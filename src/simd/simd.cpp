// Kernel tables for the of::simd facade. Compiled with -ffp-contract=off
// (see CMakeLists.txt): the scalar mirrors below must round every mul+add
// pair separately, exactly like the non-FMA intrinsics, or the two tables
// would diverge in the last bit.
#include "simd/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define OF_SIMD_X86 1
#endif

namespace of::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar table — the reference semantics. Every AVX2 kernel is a lane-wise
// transcription of exactly these loops.
// ---------------------------------------------------------------------------
namespace sc {

void add(float* d, const float* o, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] += o[i];
}
void sub(float* d, const float* o, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] -= o[i];
}
void mul(float* d, const float* o, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] *= o[i];
}
void div(float* d, const float* o, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] /= o[i];
}
void axpy(float* d, const float* o, float alpha, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] += alpha * o[i];
}
void scale(float* d, float v, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] *= v;
}
void add_scalar(float* d, float v, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] += v;
}
void clamp(float* d, float lo, float hi, std::size_t n) noexcept {
  // Intrinsic operand order: maxps(d, lo) = (d > lo) ? d : lo, then
  // minps(t, hi) = (t < hi) ? t : hi. NaN inputs resolve to lo on both
  // tables (comparisons with NaN are false → second operand).
  for (std::size_t i = 0; i < n; ++i) {
    const float t = (d[i] > lo) ? d[i] : lo;
    d[i] = (t < hi) ? t : hi;
  }
}
void accum_weighted(float* acc, const float* s, float w, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) acc[i] += s[i] * w;
}

bool scale_store(float* dst, const float* src, double scale, std::size_t n) noexcept {
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    ok &= std::isfinite(src[i]);
    dst[i] = static_cast<float>(static_cast<double>(src[i]) * scale);
  }
  return ok;
}

bool scale_store_bytes(std::uint8_t* dst, const float* src, double scale,
                       std::size_t n) noexcept {
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    ok &= std::isfinite(src[i]);
    const float v = static_cast<float>(static_cast<double>(src[i]) * scale);
    std::memcpy(dst + i * sizeof(float), &v, sizeof(float));
  }
  return ok;
}

// Round-to-nearest-even float→half, bit-for-bit VCVTPS2PH: subnormal halves
// are produced (no FTZ), overflow rounds to inf, NaNs come out quiet with
// the payload's top 10 bits.
std::uint16_t f32_to_f16_one(float f) noexcept {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t a = x & 0x7fffffffu;
  if (a >= 0x7f800000u)  // inf / NaN (quiet bit forced, payload truncated)
    return static_cast<std::uint16_t>(
        sign | (a == 0x7f800000u ? 0x7c00u : (0x7e00u | ((a >> 13) & 0x3ffu))));
  if (a >= 0x47800000u) return static_cast<std::uint16_t>(sign | 0x7c00u);  // ≥ 2^16 → inf
  if (a >= 0x38800000u) {
    // Normal half (values in [65520, 65536) carry into the exponent → inf).
    const std::uint32_t lsb = (a >> 13) & 1u;
    const std::uint32_t rounded = a + 0x00000fffu + lsb;
    return static_cast<std::uint16_t>(sign | ((rounded >> 13) - (112u << 10)));
  }
  // Subnormal half or zero: value / 2^-24 is an exact float ≤ 1024 (the
  // boundary lands on the smallest normal), rounded to int in the default
  // RN mode. |f| * 2^24 is exact — a power-of-two scale of a small value.
  float af;
  std::memcpy(&af, &a, sizeof(af));
  return static_cast<std::uint16_t>(
      sign | static_cast<std::uint32_t>(std::lrintf(af * 0x1p24f)));
}

float f16_to_f32_one(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t em = h & 0x7fffu;
  std::uint32_t bits;
  if (em >= 0x7c00u) {
    // inf / NaN — VCVTPH2PS quiets SNaNs, keeping the payload.
    bits = sign | 0x7f800000u |
           (em > 0x7c00u ? (0x00400000u | ((em & 0x3ffu) << 13)) : 0u);
  } else if (em >= 0x0400u) {
    bits = sign | ((em + (112u << 10)) << 13);  // normal: rebias
  } else if (em == 0u) {
    bits = sign;
  } else {
    // Subnormal: em * 2^-24 converts exactly (small integer × power of two).
    const float f = static_cast<float>(em) * 0x1p-24f;
    std::memcpy(&bits, &f, sizeof(bits));
    bits |= sign;
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

bool scale_store_f16_bytes(std::uint8_t* dst, const float* src, double scale,
                           std::size_t n) noexcept {
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    ok &= std::isfinite(src[i]);
    const float v = static_cast<float>(static_cast<double>(src[i]) * scale);
    const std::uint16_t h = f32_to_f16_one(v);
    std::memcpy(dst + i * sizeof(std::uint16_t), &h, sizeof(h));
  }
  return ok;
}

void accum_scaled_bytes(float* acc, const std::uint8_t* src, double alpha,
                        std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    float v;
    std::memcpy(&v, src + i * sizeof(float), sizeof(v));
    acc[i] += static_cast<float>(alpha * static_cast<double>(v));
  }
}

void accum_scaled_f16_bytes(float* acc, const std::uint8_t* src, double alpha,
                            std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t h;
    std::memcpy(&h, src + i * sizeof(h), sizeof(h));
    acc[i] += static_cast<float>(alpha * static_cast<double>(f16_to_f32_one(h)));
  }
}

double sum_squares(const float* x, std::size_t n) noexcept {
  // Fixed 4-lane double accumulation: lane j holds elements i ≡ j (mod 4);
  // lanes fold left-to-right, the tail is appended serially. The AVX2 twin
  // is one 4×double register doing literally this.
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double d = static_cast<double>(x[i + j]);
      lane[j] += d * d;
    }
  }
  double acc = ((lane[0] + lane[1]) + lane[2]) + lane[3];
  for (std::size_t i = n4; i < n; ++i) {
    const double d = static_cast<double>(x[i]);
    acc += d * d;
  }
  return acc;
}

void f32_to_f16(std::uint16_t* dst, const float* src, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32_to_f16_one(src[i]);
}
void f16_to_f32(float* dst, const std::uint16_t* src, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f16_to_f32_one(src[i]);
}

template <class Code>
void qsgd_quantize(Code* codes, const float* v, const float* draws, float norm,
                   float s, std::uint32_t max_level, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(v[i]) / norm * s;
    const float fa = std::floor(a);
    std::uint32_t level = static_cast<std::uint32_t>(fa);
    if (draws[i] < a - fa) ++level;
    if (level > max_level) level = max_level;
    codes[i] = static_cast<Code>(v[i] < 0.0f ? -static_cast<int>(level)
                                             : static_cast<int>(level));
  }
}

void qsgd_quantize_i8(std::int8_t* codes, const float* v, const float* draws,
                      float norm, float s, std::uint32_t max_level,
                      std::size_t n) noexcept {
  qsgd_quantize<std::int8_t>(codes, v, draws, norm, s, max_level, n);
}
void qsgd_quantize_i16(std::int16_t* codes, const float* v, const float* draws,
                       float norm, float s, std::uint32_t max_level,
                       std::size_t n) noexcept {
  qsgd_quantize<std::int16_t>(codes, v, draws, norm, s, max_level, n);
}

template <class Code>
void qsgd_dequantize(float* out, const std::uint8_t* codes, float norm, float s,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    Code c;
    std::memcpy(&c, codes + i * sizeof(Code), sizeof(c));
    out[i] = norm * static_cast<float>(c) / s;
  }
}

void qsgd_dequantize_i8(float* out, const std::uint8_t* codes, float norm, float s,
                        std::size_t n) noexcept {
  qsgd_dequantize<std::int8_t>(out, codes, norm, s, n);
}
void qsgd_dequantize_i16(float* out, const std::uint8_t* codes, float norm, float s,
                         std::size_t n) noexcept {
  qsgd_dequantize<std::int16_t>(out, codes, norm, s, n);
}

void mul_add_store_bytes(std::uint8_t* dst, const float* u, float clip_scale,
                         const float* noise, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = u[i] * clip_scale + noise[i];
    std::memcpy(dst + i * sizeof(float), &v, sizeof(v));
  }
}

}  // namespace sc

// ---------------------------------------------------------------------------
// AVX2 table. Each kernel runs the scalar loop on the tail; the vector body
// performs the identical arithmetic lane-wise, without FMA.
// ---------------------------------------------------------------------------
#ifdef OF_SIMD_X86

#define OF_AVX2 __attribute__((target("avx2")))
#define OF_AVX2_F16C __attribute__((target("avx2,f16c")))

namespace v2 {

OF_AVX2 void add(float* d, const float* o, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(d + i, _mm256_add_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(o + i)));
  sc::add(d + i, o + i, n - i);
}
OF_AVX2 void sub(float* d, const float* o, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(d + i, _mm256_sub_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(o + i)));
  sc::sub(d + i, o + i, n - i);
}
OF_AVX2 void mul(float* d, const float* o, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(d + i, _mm256_mul_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(o + i)));
  sc::mul(d + i, o + i, n - i);
}
OF_AVX2 void div(float* d, const float* o, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(d + i, _mm256_div_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(o + i)));
  sc::div(d + i, o + i, n - i);
}
OF_AVX2 void axpy(float* d, const float* o, float alpha, std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        d + i, _mm256_add_ps(_mm256_loadu_ps(d + i),
                             _mm256_mul_ps(av, _mm256_loadu_ps(o + i))));
  sc::axpy(d + i, o + i, alpha, n - i);
}
OF_AVX2 void scale(float* d, float v, std::size_t n) noexcept {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(d + i, _mm256_mul_ps(_mm256_loadu_ps(d + i), vv));
  sc::scale(d + i, v, n - i);
}
OF_AVX2 void add_scalar(float* d, float v, std::size_t n) noexcept {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(d + i, _mm256_add_ps(_mm256_loadu_ps(d + i), vv));
  sc::add_scalar(d + i, v, n - i);
}
OF_AVX2 void clamp(float* d, float lo, float hi, std::size_t n) noexcept {
  const __m256 lov = _mm256_set1_ps(lo), hiv = _mm256_set1_ps(hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_max_ps(_mm256_loadu_ps(d + i), lov);
    _mm256_storeu_ps(d + i, _mm256_min_ps(t, hiv));
  }
  sc::clamp(d + i, lo, hi, n - i);
}
OF_AVX2 void accum_weighted(float* acc, const float* s, float w, std::size_t n) noexcept {
  const __m256 wv = _mm256_set1_ps(w);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                               _mm256_mul_ps(_mm256_loadu_ps(s + i), wv)));
  sc::accum_weighted(acc + i, s + i, w, n - i);
}

// dst8 = float(double(src8) * scale); also ANDs the finite mask of src into
// `ok`. Shared body of the three scale-store variants.
OF_AVX2 inline __m256 scale8_f64(const float* src, __m256d scale2, bool& ok) noexcept {
  const __m256 x = _mm256_loadu_ps(src);
  // x - x is 0 for finite values, NaN for ±inf/NaN.
  const __m256 diff = _mm256_sub_ps(x, x);
  const __m256 fin = _mm256_cmp_ps(diff, _mm256_setzero_ps(), _CMP_EQ_OQ);
  ok &= _mm256_movemask_ps(fin) == 0xff;
  const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
  const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
  const __m128 rlo = _mm256_cvtpd_ps(_mm256_mul_pd(lo, scale2));
  const __m128 rhi = _mm256_cvtpd_ps(_mm256_mul_pd(hi, scale2));
  return _mm256_set_m128(rhi, rlo);
}

OF_AVX2 bool scale_store(float* dst, const float* src, double scale,
                         std::size_t n) noexcept {
  const __m256d sv = _mm256_set1_pd(scale);
  bool ok = true;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(dst + i, scale8_f64(src + i, sv, ok));
  ok &= sc::scale_store(dst + i, src + i, scale, n - i);
  return ok;
}
OF_AVX2 bool scale_store_bytes(std::uint8_t* dst, const float* src, double scale,
                               std::size_t n) noexcept {
  const __m256d sv = _mm256_set1_pd(scale);
  bool ok = true;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r = scale8_f64(src + i, sv, ok);
    _mm256_storeu_ps(reinterpret_cast<float*>(dst + i * sizeof(float)), r);
  }
  ok &= sc::scale_store_bytes(dst + i * sizeof(float), src + i, scale, n - i);
  return ok;
}
OF_AVX2_F16C bool scale_store_f16_bytes(std::uint8_t* dst, const float* src,
                                        double scale, std::size_t n) noexcept {
  const __m256d sv = _mm256_set1_pd(scale);
  bool ok = true;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r = scale8_f64(src + i, sv, ok);
    const __m128i h = _mm256_cvtps_ph(r, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * sizeof(std::uint16_t)), h);
  }
  ok &= sc::scale_store_f16_bytes(dst + i * sizeof(std::uint16_t), src + i, scale,
                                  n - i);
  return ok;
}

OF_AVX2 void accum_scaled_bytes(float* acc, const std::uint8_t* src, double alpha,
                                std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x =
        _mm256_loadu_ps(reinterpret_cast<const float*>(src + i * sizeof(float)));
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
    const __m128 rlo = _mm256_cvtpd_ps(_mm256_mul_pd(lo, av));
    const __m128 rhi = _mm256_cvtpd_ps(_mm256_mul_pd(hi, av));
    const __m256 r = _mm256_set_m128(rhi, rlo);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), r));
  }
  sc::accum_scaled_bytes(acc + i, src + i * sizeof(float), alpha, n - i);
}

OF_AVX2_F16C void accum_scaled_f16_bytes(float* acc, const std::uint8_t* src,
                                         double alpha, std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i * sizeof(std::uint16_t)));
    const __m256 x = _mm256_cvtph_ps(h);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
    const __m128 rlo = _mm256_cvtpd_ps(_mm256_mul_pd(lo, av));
    const __m128 rhi = _mm256_cvtpd_ps(_mm256_mul_pd(hi, av));
    const __m256 r = _mm256_set_m128(rhi, rlo);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), r));
  }
  sc::accum_scaled_f16_bytes(acc + i, src + i * sizeof(std::uint16_t), alpha, n - i);
}

OF_AVX2 double sum_squares(const float* x, std::size_t n) noexcept {
  __m256d acc4 = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc4 = _mm256_add_pd(acc4, _mm256_mul_pd(d, d));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc4);
  double acc = ((lane[0] + lane[1]) + lane[2]) + lane[3];
  for (std::size_t i = n4; i < n; ++i) {
    const double d = static_cast<double>(x[i]);
    acc += d * d;
  }
  return acc;
}

OF_AVX2_F16C void f32_to_f16(std::uint16_t* dst, const float* src,
                             std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm256_cvtps_ph(_mm256_loadu_ps(src + i), _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  sc::f32_to_f16(dst + i, src + i, n - i);
}
OF_AVX2_F16C void f16_to_f32(float* dst, const std::uint16_t* src,
                             std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  sc::f16_to_f32(dst + i, src + i, n - i);
}

// 8 QSGD level codes (sign folded) as int32 lanes — shared by the i8/i16
// packers. Lane-wise transcription of sc::qsgd_quantize.
OF_AVX2 inline __m256i qsgd_levels8(const float* v, const float* draws, __m256 normv,
                                    __m256 sv, __m256i maxv) noexcept {
  const __m256 x = _mm256_loadu_ps(v);
  const __m256 absx =
      _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)));
  const __m256 a = _mm256_mul_ps(_mm256_div_ps(absx, normv), sv);
  const __m256 fa = _mm256_floor_ps(a);
  const __m256 frac = _mm256_sub_ps(a, fa);
  __m256i level = _mm256_cvttps_epi32(fa);
  // draw < frac → mask is all-ones → subtracting it adds 1.
  const __m256i up = _mm256_castps_si256(
      _mm256_cmp_ps(_mm256_loadu_ps(draws), frac, _CMP_LT_OQ));
  level = _mm256_sub_epi32(level, up);
  level = _mm256_min_epu32(level, maxv);
  // v < 0 → negate via (level ^ mask) - mask (two's complement).
  const __m256i neg =
      _mm256_castps_si256(_mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_LT_OQ));
  return _mm256_sub_epi32(_mm256_xor_si256(level, neg), neg);
}

OF_AVX2 void qsgd_quantize_i8(std::int8_t* codes, const float* v, const float* draws,
                              float norm, float s, std::uint32_t max_level,
                              std::size_t n) noexcept {
  const __m256 normv = _mm256_set1_ps(norm), sv = _mm256_set1_ps(s);
  const __m256i maxv = _mm256_set1_epi32(static_cast<int>(max_level));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lv = qsgd_levels8(v + i, draws + i, normv, sv, maxv);
    const __m128i lo = _mm256_castsi256_si128(lv);
    const __m128i hi = _mm256_extracti128_si256(lv, 1);
    // Values are in [-127, 127] (max_level ≤ 127), so saturating packs are
    // exact narrowing.
    const __m128i w = _mm_packs_epi32(lo, hi);
    const __m128i b = _mm_packs_epi16(w, w);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(codes + i), b);
  }
  sc::qsgd_quantize_i8(codes + i, v + i, draws + i, norm, s, max_level, n - i);
}
OF_AVX2 void qsgd_quantize_i16(std::int16_t* codes, const float* v,
                               const float* draws, float norm, float s,
                               std::uint32_t max_level, std::size_t n) noexcept {
  const __m256 normv = _mm256_set1_ps(norm), sv = _mm256_set1_ps(s);
  const __m256i maxv = _mm256_set1_epi32(static_cast<int>(max_level));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lv = qsgd_levels8(v + i, draws + i, normv, sv, maxv);
    const __m128i lo = _mm256_castsi256_si128(lv);
    const __m128i hi = _mm256_extracti128_si256(lv, 1);
    const __m128i w = _mm_packs_epi32(lo, hi);  // exact: |level| ≤ 32767
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i), w);
  }
  sc::qsgd_quantize_i16(codes + i, v + i, draws + i, norm, s, max_level, n - i);
}

OF_AVX2 void qsgd_dequantize_i8(float* out, const std::uint8_t* codes, float norm,
                                float s, std::size_t n) noexcept {
  const __m256 normv = _mm256_set1_ps(norm), sv = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
    _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_mul_ps(normv, f), sv));
  }
  sc::qsgd_dequantize_i8(out + i, codes + i, norm, s, n - i);
}
OF_AVX2 void qsgd_dequantize_i16(float* out, const std::uint8_t* codes, float norm,
                                 float s, std::size_t n) noexcept {
  const __m256 normv = _mm256_set1_ps(norm), sv = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i w = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(codes + i * sizeof(std::int16_t)));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(w));
    _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_mul_ps(normv, f), sv));
  }
  sc::qsgd_dequantize_i16(out + i, codes + i * sizeof(std::int16_t), norm, s, n - i);
}

OF_AVX2 void mul_add_store_bytes(std::uint8_t* dst, const float* u, float clip_scale,
                                 const float* noise, std::size_t n) noexcept {
  const __m256 cs = _mm256_set1_ps(clip_scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(u + i), cs),
                                   _mm256_loadu_ps(noise + i));
    _mm256_storeu_ps(reinterpret_cast<float*>(dst + i * sizeof(float)), r);
  }
  sc::mul_add_store_bytes(dst + i * sizeof(float), u + i, clip_scale, noise + i,
                          n - i);
}

}  // namespace v2

#endif  // OF_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

struct Table {
  const char* level;
  void (*add)(float*, const float*, std::size_t) noexcept;
  void (*sub)(float*, const float*, std::size_t) noexcept;
  void (*mul)(float*, const float*, std::size_t) noexcept;
  void (*div)(float*, const float*, std::size_t) noexcept;
  void (*axpy)(float*, const float*, float, std::size_t) noexcept;
  void (*scale)(float*, float, std::size_t) noexcept;
  void (*add_scalar)(float*, float, std::size_t) noexcept;
  void (*clamp)(float*, float, float, std::size_t) noexcept;
  void (*accum_weighted)(float*, const float*, float, std::size_t) noexcept;
  bool (*scale_store)(float*, const float*, double, std::size_t) noexcept;
  bool (*scale_store_bytes)(std::uint8_t*, const float*, double, std::size_t) noexcept;
  bool (*scale_store_f16_bytes)(std::uint8_t*, const float*, double,
                                std::size_t) noexcept;
  void (*accum_scaled_bytes)(float*, const std::uint8_t*, double, std::size_t) noexcept;
  void (*accum_scaled_f16_bytes)(float*, const std::uint8_t*, double,
                                 std::size_t) noexcept;
  double (*sum_squares)(const float*, std::size_t) noexcept;
  void (*f32_to_f16)(std::uint16_t*, const float*, std::size_t) noexcept;
  void (*f16_to_f32)(float*, const std::uint16_t*, std::size_t) noexcept;
  void (*qsgd_quantize_i8)(std::int8_t*, const float*, const float*, float, float,
                           std::uint32_t, std::size_t) noexcept;
  void (*qsgd_quantize_i16)(std::int16_t*, const float*, const float*, float, float,
                            std::uint32_t, std::size_t) noexcept;
  void (*qsgd_dequantize_i8)(float*, const std::uint8_t*, float, float,
                             std::size_t) noexcept;
  void (*qsgd_dequantize_i16)(float*, const std::uint8_t*, float, float,
                              std::size_t) noexcept;
  void (*mul_add_store_bytes)(std::uint8_t*, const float*, float, const float*,
                              std::size_t) noexcept;
};

constexpr Table kScalarTable = {
    "scalar",          sc::add,
    sc::sub,           sc::mul,
    sc::div,           sc::axpy,
    sc::scale,         sc::add_scalar,
    sc::clamp,         sc::accum_weighted,
    sc::scale_store,   sc::scale_store_bytes,
    sc::scale_store_f16_bytes,
    sc::accum_scaled_bytes,
    sc::accum_scaled_f16_bytes,
    sc::sum_squares,   sc::f32_to_f16,
    sc::f16_to_f32,    sc::qsgd_quantize_i8,
    sc::qsgd_quantize_i16,
    sc::qsgd_dequantize_i8,
    sc::qsgd_dequantize_i16,
    sc::mul_add_store_bytes,
};

#ifdef OF_SIMD_X86
constexpr Table kAvx2Table = {
    "avx2",            v2::add,
    v2::sub,           v2::mul,
    v2::div,           v2::axpy,
    v2::scale,         v2::add_scalar,
    v2::clamp,         v2::accum_weighted,
    v2::scale_store,   v2::scale_store_bytes,
    v2::scale_store_f16_bytes,
    v2::accum_scaled_bytes,
    v2::accum_scaled_f16_bytes,
    v2::sum_squares,   v2::f32_to_f16,
    v2::f16_to_f32,    v2::qsgd_quantize_i8,
    v2::qsgd_quantize_i16,
    v2::qsgd_dequantize_i8,
    v2::qsgd_dequantize_i16,
    v2::mul_add_store_bytes,
};

bool cpu_has_avx2() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
}
#endif

const Table* select(Mode m) noexcept {
#ifdef OF_SIMD_X86
  if (m == Mode::Auto && cpu_has_avx2()) return &kAvx2Table;
#else
  (void)m;
#endif
  return &kScalarTable;
}

std::atomic<Mode> g_mode{Mode::Auto};
// Bound lazily so callers that never go through the Engine (tests, benches)
// still get Auto. select() is deterministic, so the benign first-use race
// stores the same pointer from every thread.
std::atomic<const Table*> g_table{nullptr};

inline const Table& table() noexcept {
  const Table* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = select(g_mode.load(std::memory_order_relaxed));
    g_table.store(t, std::memory_order_release);
  }
  return *t;
}

}  // namespace

void configure(Mode m) noexcept {
  g_mode.store(m, std::memory_order_relaxed);
  g_table.store(select(m), std::memory_order_release);
}

Mode mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

bool avx2_active() noexcept { return table().level[0] == 'a'; }

const char* active_level() noexcept { return table().level; }

void add(float* d, const float* o, std::size_t n) noexcept { table().add(d, o, n); }
void sub(float* d, const float* o, std::size_t n) noexcept { table().sub(d, o, n); }
void mul(float* d, const float* o, std::size_t n) noexcept { table().mul(d, o, n); }
void div(float* d, const float* o, std::size_t n) noexcept { table().div(d, o, n); }
void axpy(float* d, const float* o, float alpha, std::size_t n) noexcept {
  table().axpy(d, o, alpha, n);
}
void scale(float* d, float v, std::size_t n) noexcept { table().scale(d, v, n); }
void add_scalar(float* d, float v, std::size_t n) noexcept {
  table().add_scalar(d, v, n);
}
void clamp(float* d, float lo, float hi, std::size_t n) noexcept {
  table().clamp(d, lo, hi, n);
}
void accum_weighted(float* acc, const float* s, float w, std::size_t n) noexcept {
  table().accum_weighted(acc, s, w, n);
}
bool scale_store(float* dst, const float* src, double scale, std::size_t n) noexcept {
  return table().scale_store(dst, src, scale, n);
}
bool scale_store_bytes(std::uint8_t* dst, const float* src, double scale,
                       std::size_t n) noexcept {
  return table().scale_store_bytes(dst, src, scale, n);
}
bool scale_store_f16_bytes(std::uint8_t* dst, const float* src, double scale,
                           std::size_t n) noexcept {
  return table().scale_store_f16_bytes(dst, src, scale, n);
}
std::size_t find_nonfinite(const float* src, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(src[i])) return i;
  return n;
}
void accum_scaled_bytes(float* acc, const std::uint8_t* src, double alpha,
                        std::size_t n) noexcept {
  table().accum_scaled_bytes(acc, src, alpha, n);
}
void accum_scaled_f16_bytes(float* acc, const std::uint8_t* src, double alpha,
                            std::size_t n) noexcept {
  table().accum_scaled_f16_bytes(acc, src, alpha, n);
}
double sum_squares(const float* x, std::size_t n) noexcept {
  return table().sum_squares(x, n);
}
void f32_to_f16(std::uint16_t* dst, const float* src, std::size_t n) noexcept {
  table().f32_to_f16(dst, src, n);
}
void f16_to_f32(float* dst, const std::uint16_t* src, std::size_t n) noexcept {
  table().f16_to_f32(dst, src, n);
}
void qsgd_quantize_i8(std::int8_t* codes, const float* v, const float* draws,
                      float norm, float s, std::uint32_t max_level,
                      std::size_t n) noexcept {
  table().qsgd_quantize_i8(codes, v, draws, norm, s, max_level, n);
}
void qsgd_quantize_i16(std::int16_t* codes, const float* v, const float* draws,
                       float norm, float s, std::uint32_t max_level,
                       std::size_t n) noexcept {
  table().qsgd_quantize_i16(codes, v, draws, norm, s, max_level, n);
}
void qsgd_dequantize_i8(float* out, const std::uint8_t* codes, float norm, float s,
                        std::size_t n) noexcept {
  table().qsgd_dequantize_i8(out, codes, norm, s, n);
}
void qsgd_dequantize_i16(float* out, const std::uint8_t* codes, float norm, float s,
                         std::size_t n) noexcept {
  table().qsgd_dequantize_i16(out, codes, norm, s, n);
}
void mul_add_store_bytes(std::uint8_t* dst, const float* u, float clip_scale,
                         const float* noise, std::size_t n) noexcept {
  table().mul_add_store_bytes(dst, u, clip_scale, noise, n);
}

}  // namespace of::simd
