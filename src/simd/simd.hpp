// of::simd — runtime-dispatched portable SIMD kernels (DESIGN.md §15).
//
// Every hot inner loop of the update pipeline (tensor elementwise ops, the
// matmul/conv axpy, scale-while-flatten stores, frame-body accumulation,
// QSGD quantize/dequantize, DP clip) funnels through this facade. At
// configure() time the facade binds either the AVX2 kernel table (when the
// CPU supports avx2+f16c and the mode allows it) or the scalar table; call
// sites never branch on the ISA themselves.
//
// The contract that makes `exec: {simd: auto}` safe to flip on: every
// kernel's scalar fallback performs the *same arithmetic in the same order*
// as its AVX2 twin, so the two tables produce bitwise-identical results —
// the same discipline of::exec applies to threads=1 vs N. Elementwise
// kernels are lane-independent, so any vector width matches the serial
// loop; reductions (sum_squares) commit to a fixed 4-lane double
// accumulation mirrored exactly by the scalar table. The TU is compiled
// with -ffp-contract=off so the compiler cannot fuse the scalar mul+add
// pairs into FMAs the explicit intrinsics do not use.
//
// Min/max-style kernels (clamp) define their semantics as the intrinsic's
// `(a OP b) ? a : b` operand order, which both tables implement literally —
// NaN propagation is identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "refl/refl.hpp"

namespace of::simd {

// The `exec: {simd: auto|off}` knob. Auto binds AVX2 when the CPU has it;
// Off forces the scalar table (the bitwise-identity reference).
enum class Mode : std::uint8_t { Auto, Off };

// Bind the kernel table for `mode`. Cheap and thread-safe (an atomic
// pointer swap); the Engine calls it from the exec config before node
// threads spawn, tests flip it per-case.
void configure(Mode mode) noexcept;
Mode mode() noexcept;
// True when the AVX2 table is bound (Auto on a capable CPU).
bool avx2_active() noexcept;
// "avx2" or "scalar" — what level() the bound table implements.
const char* active_level() noexcept;

// --- elementwise kernels (lane-independent; bitwise == serial loop) --------
void add(float* d, const float* o, std::size_t n) noexcept;       // d[i] += o[i]
void sub(float* d, const float* o, std::size_t n) noexcept;       // d[i] -= o[i]
void mul(float* d, const float* o, std::size_t n) noexcept;       // d[i] *= o[i]
void div(float* d, const float* o, std::size_t n) noexcept;       // d[i] /= o[i]
void axpy(float* d, const float* o, float alpha, std::size_t n) noexcept;  // d[i] += alpha*o[i]
void scale(float* d, float v, std::size_t n) noexcept;            // d[i] *= v
void add_scalar(float* d, float v, std::size_t n) noexcept;       // d[i] += v
// d[i] = min(max(d[i], lo), hi) with intrinsic operand order:
// t = (d > lo) ? d : lo; d = (t < hi) ? t : hi.
void clamp(float* d, float lo, float hi, std::size_t n) noexcept;

// acc[i] += s[i] * w (mul then add — never contracted).
void accum_weighted(float* acc, const float* s, float w, std::size_t n) noexcept;

// --- scale-while-flatten stores (double-precision scale) -------------------
// dst[i] = float(double(src[i]) * scale). Returns true iff every *input*
// was finite — the encode-admission check fused into the store, so the
// NaN/Inf screen costs no extra pass. `dst` variants taking bytes write to
// unaligned frame offsets.
bool scale_store(float* dst, const float* src, double scale, std::size_t n) noexcept;
bool scale_store_bytes(std::uint8_t* dst, const float* src, double scale,
                       std::size_t n) noexcept;
// fp16 wire store: dst[i] = f16_rne(float(double(src[i]) * scale)).
bool scale_store_f16_bytes(std::uint8_t* dst, const float* src, double scale,
                           std::size_t n) noexcept;
// Index of the first non-finite element (n when all finite) — the cold
// rescan that turns a false scale_store flag into a structured error.
std::size_t find_nonfinite(const float* src, std::size_t n) noexcept;

// --- frame-body accumulation (unaligned byte sources) ----------------------
// acc[i] += float(alpha * double(src_f32[i])), src unaligned.
void accum_scaled_bytes(float* acc, const std::uint8_t* src, double alpha,
                        std::size_t n) noexcept;
// acc[i] += float(alpha * double(f32(src_f16[i]))), src unaligned halves.
void accum_scaled_f16_bytes(float* acc, const std::uint8_t* src, double alpha,
                            std::size_t n) noexcept;

// --- fixed-lane reduction --------------------------------------------------
// Sum of squares in double over a fixed 4-lane accumulation: lane j gathers
// elements i ≡ j (mod 4), lanes fold as ((l0+l1)+l2)+l3, tail appended
// serially. Identical on both tables by construction; note the lane
// structure makes this a *different* float sum than a naive serial loop.
double sum_squares(const float* x, std::size_t n) noexcept;

// --- fp16 conversion (wire repr) -------------------------------------------
// Round-to-nearest-even float→half, matching VCVTPS2PH bit-for-bit
// (subnormals produced, overflow→inf, NaN quieted with truncated payload).
void f32_to_f16(std::uint16_t* dst, const float* src, std::size_t n) noexcept;
void f16_to_f32(float* dst, const std::uint16_t* src, std::size_t n) noexcept;

// --- QSGD kernels ----------------------------------------------------------
// Quantize one bucket (norm > 0): per element
//   a = fabs(v)/norm*s; level = floor(a) + (draw < a-floor(a)); clamp to
//   max_level; code = v < 0 ? -level : level.
// `draws` holds one uniform [0,1) float per element (generated by the
// caller's counter-based stream — RNG state advances serially, arithmetic
// vectorizes).
void qsgd_quantize_i8(std::int8_t* codes, const float* v, const float* draws,
                      float norm, float s, std::uint32_t max_level,
                      std::size_t n) noexcept;
void qsgd_quantize_i16(std::int16_t* codes, const float* v, const float* draws,
                       float norm, float s, std::uint32_t max_level,
                       std::size_t n) noexcept;
// Dequantize one bucket: out[i] = norm * float(code[i]) / s (mul then div),
// codes read from the unaligned payload.
void qsgd_dequantize_i8(float* out, const std::uint8_t* codes, float norm, float s,
                        std::size_t n) noexcept;
void qsgd_dequantize_i16(float* out, const std::uint8_t* codes, float norm, float s,
                         std::size_t n) noexcept;

// out[i] = float(u[i] * clip_scale + noise[i]) stored to unaligned bytes —
// the DP clip-and-perturb store (noise drawn serially by the caller).
void mul_add_store_bytes(std::uint8_t* dst, const float* u, float clip_scale,
                         const float* noise, std::size_t n) noexcept;

}  // namespace of::simd

template <>
struct of::refl::EnumNames<of::simd::Mode> {
  static constexpr std::pair<of::simd::Mode, const char*> names[] = {
      {of::simd::Mode::Auto, "auto"},
      {of::simd::Mode::Off, "off"},
  };
};
