#include "streaming/broker.hpp"

#include <chrono>

#include "common/check.hpp"

namespace of::streaming {

void Broker::create_topic(const std::string& topic, std::size_t partitions) {
  OF_CHECK_MSG(partitions >= 1, "topic needs at least one partition");
  std::lock_guard<std::mutex> lock(mu_);
  OF_CHECK_MSG(!topics_.count(topic), "topic '" << topic << "' already exists");
  topics_[topic].partitions.resize(partitions);
}

bool Broker::has_topic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.count(topic) > 0;
}

std::size_t Broker::partition_count(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  OF_CHECK_MSG(it != topics_.end(), "unknown topic '" << topic << "'");
  return it->second.partitions.size();
}

std::uint64_t Broker::produce(const std::string& topic, std::size_t partition,
                              std::uint64_t key, Bytes payload) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  OF_CHECK_MSG(it != topics_.end(), "unknown topic '" << topic << "'");
  OF_CHECK_MSG(partition < it->second.partitions.size(),
               "partition " << partition << " out of range for '" << topic << "'");
  auto& log = it->second.partitions[partition].log;
  Record r;
  r.offset = log.size();
  r.key = key;
  r.payload = std::move(payload);
  log.push_back(std::move(r));
  const std::uint64_t offset = log.back().offset;
  lock.unlock();
  cv_.notify_all();
  return offset;
}

std::uint64_t Broker::produce_keyed(const std::string& topic, std::uint64_t key,
                                    Bytes payload) {
  const std::size_t parts = partition_count(topic);
  return produce(topic, static_cast<std::size_t>(key % parts), key, std::move(payload));
}

std::vector<Record> Broker::fetch(const std::string& topic, std::size_t partition,
                                  std::uint64_t offset, std::size_t max_records,
                                  double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  OF_CHECK_MSG(it != topics_.end(), "unknown topic '" << topic << "'");
  OF_CHECK_MSG(partition < it->second.partitions.size(),
               "partition " << partition << " out of range for '" << topic << "'");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  auto& log = it->second.partitions[partition].log;
  cv_.wait_until(lock, deadline, [&] { return log.size() > offset; });
  std::vector<Record> out;
  for (std::size_t i = offset; i < log.size() && out.size() < max_records; ++i)
    out.push_back(log[i]);
  return out;
}

std::uint64_t Broker::end_offset(const std::string& topic, std::size_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  OF_CHECK_MSG(it != topics_.end(), "unknown topic '" << topic << "'");
  return it->second.partitions.at(partition).log.size();
}

std::vector<std::size_t> assign_partitions(std::size_t partitions, std::size_t members,
                                           std::size_t member_index) {
  OF_CHECK_MSG(members >= 1 && member_index < members, "bad consumer-group membership");
  std::vector<std::size_t> mine;
  for (std::size_t p = member_index; p < partitions; p += members) mine.push_back(p);
  return mine;
}

}  // namespace of::streaming
