// In-process message broker — the Apache Kafka stand-in (paper §3.4.3).
//
// Topics are split into partitions; each partition is an append-only,
// offset-addressed log. Ordering is guaranteed *within* a partition (the
// exact guarantee Kafka gives and the paper relies on). Producers append
// (optionally routed by key hash); consumers fetch by explicit offset, and
// ConsumerGroup assigns each partition to exactly one member.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/serialize.hpp"

namespace of::streaming {

using tensor::Bytes;

struct Record {
  std::uint64_t offset = 0;
  std::uint64_t key = 0;
  Bytes payload;
};

class Broker {
 public:
  Broker() = default;
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  void create_topic(const std::string& topic, std::size_t partitions);
  bool has_topic(const std::string& topic) const;
  std::size_t partition_count(const std::string& topic) const;

  // Append to an explicit partition; returns the record's offset.
  std::uint64_t produce(const std::string& topic, std::size_t partition, std::uint64_t key,
                        Bytes payload);
  // Key-routed append (partition = key % partitions), Kafka's default.
  std::uint64_t produce_keyed(const std::string& topic, std::uint64_t key, Bytes payload);

  // Fetch up to `max_records` starting at `offset`. Blocks up to
  // `timeout_seconds` for at least one record; returns what is available.
  std::vector<Record> fetch(const std::string& topic, std::size_t partition,
                            std::uint64_t offset, std::size_t max_records,
                            double timeout_seconds);

  // Current end offset (next offset to be written) of a partition.
  std::uint64_t end_offset(const std::string& topic, std::size_t partition) const;

 private:
  struct Partition {
    std::vector<Record> log;
  };
  struct Topic {
    std::vector<Partition> partitions;
  };

  const Topic& topic_ref(const std::string& name) const;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, Topic> topics_;
};

// Static round-robin partition assignment for a consumer group: partition p
// goes to member p % members. Each partition has exactly one owner
// (Kafka's within-group exclusivity).
std::vector<std::size_t> assign_partitions(std::size_t partitions, std::size_t members,
                                           std::size_t member_index);

}  // namespace of::streaming
