#include "streaming/consumer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace of::streaming {

Consumer::Consumer(Broker& broker, std::string topic, std::size_t group_size,
                   std::size_t member_index)
    : broker_(&broker), topic_(std::move(topic)) {
  assigned_ = assign_partitions(broker_->partition_count(topic_), group_size, member_index);
  offsets_.assign(assigned_.size(), 0);
}

std::vector<Record> Consumer::poll(std::size_t max_records, double timeout_seconds) {
  std::vector<Record> out;
  if (assigned_.empty()) return out;
  // Round-robin over assigned partitions; the blocking wait budget goes to
  // the first dry partition only, subsequent ones are non-blocking.
  double budget = timeout_seconds;
  for (std::size_t i = 0; i < assigned_.size() && out.size() < max_records; ++i) {
    auto recs = broker_->fetch(topic_, assigned_[i], offsets_[i], max_records - out.size(),
                               budget);
    budget = 0.0;
    if (!recs.empty()) {
      offsets_[i] = recs.back().offset + 1;
      consumed_ += recs.size();
      for (auto& r : recs) out.push_back(std::move(r));
    }
  }
  return out;
}

std::uint64_t Consumer::lag() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < assigned_.size(); ++i) {
    const std::uint64_t end = broker_->end_offset(topic_, assigned_[i]);
    total += end - std::min<std::uint64_t>(end, offsets_[i]);
  }
  return total;
}

Bytes encode_sample(const tensor::Tensor& row, std::size_t label) {
  Bytes out;
  tensor::append_pod<std::uint64_t>(out, label);
  tensor::serialize_tensor(row, out);
  return out;
}

void decode_sample(const Bytes& payload, tensor::Tensor& row, std::size_t& label) {
  std::size_t off = 0;
  label = static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(payload, off));
  row = tensor::deserialize_tensor(payload, off);
  OF_CHECK_MSG(off == payload.size(), "trailing bytes in sample record");
}

StreamingDataLoader::StreamingDataLoader(Broker& broker, std::string topic,
                                         std::size_t group_size, std::size_t member_index,
                                         std::size_t batch_size)
    : consumer_(broker, std::move(topic), group_size, member_index),
      batch_size_(batch_size),
      start_(std::chrono::steady_clock::now()) {
  OF_CHECK_MSG(batch_size_ >= 1, "batch size must be >= 1");
}

data::Batch StreamingDataLoader::next_batch(double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  std::vector<tensor::Tensor> rows;
  std::vector<std::size_t> labels;
  while (rows.size() < batch_size_) {
    const double remaining = std::chrono::duration<double>(
                                 deadline - std::chrono::steady_clock::now())
                                 .count();
    if (remaining <= 0.0) break;
    auto recs = consumer_.poll(batch_size_ - rows.size(), remaining);
    if (recs.empty()) continue;
    for (const auto& r : recs) {
      tensor::Tensor row;
      std::size_t label = 0;
      decode_sample(r.payload, row, label);
      rows.push_back(std::move(row));
      labels.push_back(label);
    }
  }
  data::Batch b;
  if (rows.empty()) return b;
  const std::size_t dim = rows.front().numel();
  b.x = tensor::Tensor({rows.size(), dim});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    OF_CHECK_MSG(rows[i].numel() == dim, "inconsistent sample dimensions in stream");
    std::copy_n(rows[i].data(), dim, b.x.data() + i * dim);
  }
  b.y = std::move(labels);
  return b;
}

double StreamingDataLoader::effective_rate() const {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  return elapsed > 0.0 ? static_cast<double>(consumer_.records_consumed()) / elapsed : 0.0;
}

}  // namespace of::streaming
