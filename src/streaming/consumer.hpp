// Consumer + streaming dataloader.
//
// Consumer polls its assigned partitions (consumer-group round-robin) and
// tracks per-partition offsets. StreamingDataLoader is the paper's "custom
// PyTorch dataloader that subscribes to a topic": records carry serialized
// (features, label) samples, poll() hands back training batches, and the
// loader measures the effective stream-rate the client actually achieves.
#pragma once

#include <chrono>
#include <string>

#include "data/dataset.hpp"
#include "streaming/broker.hpp"

namespace of::streaming {

class Consumer {
 public:
  Consumer(Broker& broker, std::string topic, std::size_t group_size,
           std::size_t member_index);

  // Poll up to `max_records` across assigned partitions.
  std::vector<Record> poll(std::size_t max_records, double timeout_seconds);

  const std::vector<std::size_t>& assigned_partitions() const noexcept { return assigned_; }
  std::uint64_t records_consumed() const noexcept { return consumed_; }
  // Records lagging behind the log end across assigned partitions.
  std::uint64_t lag() const;

 private:
  Broker* broker_;
  std::string topic_;
  std::vector<std::size_t> assigned_;
  std::vector<std::uint64_t> offsets_;  // parallel to assigned_
  std::uint64_t consumed_ = 0;
};

// Serialize one (row, label) training sample into a record payload.
Bytes encode_sample(const tensor::Tensor& row, std::size_t label);
void decode_sample(const Bytes& payload, tensor::Tensor& row, std::size_t& label);

class StreamingDataLoader {
 public:
  StreamingDataLoader(Broker& broker, std::string topic, std::size_t group_size,
                      std::size_t member_index, std::size_t batch_size);

  // Block up to `timeout_seconds` building one batch (may return a short
  // batch, or nullopt-like empty batch if the stream stays dry).
  data::Batch next_batch(double timeout_seconds);

  std::uint64_t samples_received() const noexcept { return consumer_.records_consumed(); }
  double effective_rate() const;

 private:
  Consumer consumer_;
  std::size_t batch_size_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace of::streaming
