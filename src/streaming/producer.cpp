#include "streaming/producer.hpp"

#include <thread>

#include "common/check.hpp"

namespace of::streaming {

RateLimitedProducer::RateLimitedProducer(Broker& broker, std::string topic,
                                         double target_rate, double burst_capacity)
    : broker_(&broker),
      topic_(std::move(topic)),
      target_rate_(target_rate),
      burst_capacity_(burst_capacity),
      tokens_(burst_capacity),
      last_refill_(std::chrono::steady_clock::now()),
      start_(last_refill_) {
  OF_CHECK_MSG(target_rate >= 0.0, "target rate must be non-negative");
  OF_CHECK_MSG(burst_capacity >= 1.0, "burst capacity must be at least 1 token");
}

void RateLimitedProducer::take_token() {
  if (target_rate_ <= 0.0) return;  // unthrottled
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    tokens_ += std::chrono::duration<double>(now - last_refill_).count() * target_rate_;
    if (tokens_ > burst_capacity_) tokens_ = burst_capacity_;
    last_refill_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return;
    }
    // Sleep until roughly one token is available.
    const double wait = (1.0 - tokens_) / target_rate_;
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
  }
}

std::uint64_t RateLimitedProducer::produce(std::size_t partition, std::uint64_t key,
                                           Bytes payload) {
  take_token();
  ++produced_;
  return broker_->produce(topic_, partition, key, std::move(payload));
}

std::uint64_t RateLimitedProducer::produce_keyed(std::uint64_t key, Bytes payload) {
  take_token();
  ++produced_;
  return broker_->produce_keyed(topic_, key, std::move(payload));
}

double RateLimitedProducer::effective_rate() const {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  return elapsed > 0.0 ? static_cast<double>(produced_) / elapsed : 0.0;
}

}  // namespace of::streaming
