// Rate-limited producer: publishes records to a topic at a target
// records/second using a token bucket, reproducing the paper's
// "set a specific stream-rate that a user sets" knob (Fig. 6).
#pragma once

#include <string>

#include "streaming/broker.hpp"

namespace of::streaming {

class RateLimitedProducer {
 public:
  // target_rate in records/second; 0 = unthrottled.
  RateLimitedProducer(Broker& broker, std::string topic, double target_rate,
                      double burst_capacity = 1.0);

  // Blocks (token bucket) until the record may be sent, then appends.
  std::uint64_t produce(std::size_t partition, std::uint64_t key, Bytes payload);
  std::uint64_t produce_keyed(std::uint64_t key, Bytes payload);

  double target_rate() const noexcept { return target_rate_; }
  std::uint64_t records_produced() const noexcept { return produced_; }
  // Effective rate since construction.
  double effective_rate() const;

 private:
  void take_token();

  Broker* broker_;
  std::string topic_;
  double target_rate_;
  double burst_capacity_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t produced_ = 0;
};

}  // namespace of::streaming
