// Deterministic, seedable pseudo-random number generation for OmniFed.
//
// Every stochastic component in the framework (weight init, data synthesis,
// DP noise, stochastic quantization, RandomK sampling) draws from an
// explicitly passed Rng so that whole federated runs are reproducible from
// a single seed. The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>
#include <cmath>

namespace of::tensor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  float next_float() noexcept { return static_cast<float>(next_double()); }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept {
    // Lemire-style rejection-free-enough bounded draw; bias is negligible
    // for the n << 2^64 used here.
    return next_u64() % n;
  }

  // Standard normal via Box–Muller (cached pair).
  double gaussian() noexcept {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = 0.0;
    do { u1 = next_double(); } while (u1 <= 1e-300);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double stddev) noexcept { return mean + stddev * gaussian(); }

  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Derive an independent child generator (for per-node streams).
  Rng split() noexcept { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_gauss_ = 0.0;
  bool has_gauss_ = false;
};

}  // namespace of::tensor
