#include "tensor/serialize.hpp"

#include "simd/simd.hpp"

namespace of::tensor {

bool append_scaled_span(Bytes& out, ConstFloatSpan src, double scale) {
  const std::size_t start = out.size();
  out.resize(start + src.size() * sizeof(float));
  // The scale is applied in double on purpose: per-client sample weights are
  // doubles, and squashing them to float before the multiply drops low bits
  // that the weighted mean then never recovers.
  return simd::scale_store_bytes(out.data() + start, src.data(), scale, src.size());
}

bool append_scaled_f16_span(Bytes& out, ConstFloatSpan src, double scale) {
  const std::size_t start = out.size();
  out.resize(start + src.size() * sizeof(std::uint16_t));
  return simd::scale_store_f16_bytes(out.data() + start, src.data(), scale,
                                     src.size());
}

void add_scaled_from_bytes(ConstByteSpan src, double alpha, FloatSpan acc) {
  OF_CHECK_MSG(src.size() == acc.size() * sizeof(float),
               "accumulate size mismatch: " << src.size() << " bytes vs " << acc.size()
                                            << " floats");
  // Frame bodies start at mode-byte + manifest offsets, so `src` is almost
  // never 4-byte aligned — the kernel uses unaligned loads throughout.
  simd::accum_scaled_bytes(acc.data(), src.data(), alpha, acc.size());
}

void add_scaled_from_f16_bytes(ConstByteSpan src, double alpha, FloatSpan acc) {
  OF_CHECK_MSG(src.size() == acc.size() * sizeof(std::uint16_t),
               "accumulate size mismatch: " << src.size() << " bytes vs " << acc.size()
                                            << " halves");
  simd::accum_scaled_f16_bytes(acc.data(), src.data(), alpha, acc.size());
}

void serialize_tensor(const Tensor& t, Bytes& out) {
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.ndim()));
  for (std::size_t d : t.shape()) append_pod<std::uint64_t>(out, d);
  append_span(out, t.data(), t.numel());
}

Bytes serialize_tensor(const Tensor& t) {
  Bytes out;
  out.reserve(4 + 8 * t.ndim() + 4 * t.numel());
  serialize_tensor(t, out);
  return out;
}

Tensor deserialize_tensor(ConstByteSpan buf, std::size_t& offset) {
  const auto ndim = read_pod<std::uint32_t>(buf, offset);
  OF_CHECK_MSG(ndim <= 8, "implausible tensor rank " << ndim << " — corrupt frame?");
  Shape shape(ndim);
  std::size_t numel = 1;
  for (auto& d : shape) {
    const auto dim = read_pod<std::uint64_t>(buf, offset);
    // The float data for this tensor still has to fit in the remaining
    // payload; reject hostile/corrupt dims before Tensor allocates, keeping a
    // running product so multi-dim shapes can't sneak past a per-dim cap.
    const std::size_t max_numel = (buf.size() - offset) / sizeof(float);
    OF_CHECK_MSG(dim <= max_numel && (dim == 0 || numel <= max_numel / dim),
                 "tensor dims exceed remaining frame — corrupt frame?");
    numel *= static_cast<std::size_t>(dim);
    d = static_cast<std::size_t>(dim);
  }
  Tensor t(shape);
  read_span(buf, offset, t.data(), t.numel());
  return t;
}

Tensor deserialize_tensor(ConstByteSpan buf) {
  std::size_t offset = 0;
  Tensor t = deserialize_tensor(buf, offset);
  OF_CHECK_MSG(offset == buf.size(), "trailing bytes after tensor frame");
  return t;
}

Bytes serialize_tensors(const std::vector<Tensor>& ts) {
  Bytes out;
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(ts.size()));
  for (const auto& t : ts) serialize_tensor(t, out);
  return out;
}

std::vector<Tensor> deserialize_tensors(ConstByteSpan buf) {
  std::size_t offset = 0;
  const auto count = read_pod<std::uint32_t>(buf, offset);
  OF_CHECK_MSG(count <= (buf.size() - offset) / sizeof(std::uint32_t),
               "tensor count " << count << " exceeds remaining frame — corrupt frame?");
  std::vector<Tensor> ts;
  ts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ts.push_back(deserialize_tensor(buf, offset));
  OF_CHECK_MSG(offset == buf.size(), "trailing bytes after tensor list frame");
  return ts;
}

}  // namespace of::tensor
