#include "tensor/serialize.hpp"

namespace of::tensor {

void serialize_tensor(const Tensor& t, Bytes& out) {
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.ndim()));
  for (std::size_t d : t.shape()) append_pod<std::uint64_t>(out, d);
  append_span(out, t.data(), t.numel());
}

Bytes serialize_tensor(const Tensor& t) {
  Bytes out;
  out.reserve(4 + 8 * t.ndim() + 4 * t.numel());
  serialize_tensor(t, out);
  return out;
}

Tensor deserialize_tensor(const Bytes& buf, std::size_t& offset) {
  const auto ndim = read_pod<std::uint32_t>(buf, offset);
  OF_CHECK_MSG(ndim <= 8, "implausible tensor rank " << ndim << " — corrupt frame?");
  Shape shape(ndim);
  for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(buf, offset));
  Tensor t(shape);
  read_span(buf, offset, t.data(), t.numel());
  return t;
}

Tensor deserialize_tensor(const Bytes& buf) {
  std::size_t offset = 0;
  Tensor t = deserialize_tensor(buf, offset);
  OF_CHECK_MSG(offset == buf.size(), "trailing bytes after tensor frame");
  return t;
}

Bytes serialize_tensors(const std::vector<Tensor>& ts) {
  Bytes out;
  append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(ts.size()));
  for (const auto& t : ts) serialize_tensor(t, out);
  return out;
}

std::vector<Tensor> deserialize_tensors(const Bytes& buf) {
  std::size_t offset = 0;
  const auto count = read_pod<std::uint32_t>(buf, offset);
  std::vector<Tensor> ts;
  ts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ts.push_back(deserialize_tensor(buf, offset));
  OF_CHECK_MSG(offset == buf.size(), "trailing bytes after tensor list frame");
  return ts;
}

}  // namespace of::tensor
