// Binary (de)serialization of tensors — the wire format shared by all
// communicators. Little-endian, self-describing:
//   u32 ndim | u64 dims[ndim] | f32 data[numel]
// plus helpers for packing arbitrary PODs into byte buffers, used by the
// compression payload formats and the TCP wire protocol.
//
// Readers are span-based: a `ConstByteSpan` view plus a cursor lets every
// decode stage walk a received frame in place, with no tail copies. The
// owning-`Bytes` overloads delegate to the span forms.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "tensor/span.hpp"
#include "tensor/tensor.hpp"

namespace of::tensor {

// 64-byte aligned (common/aligned.hpp): SIMD loops over frame bodies start
// from an aligned base whenever the in-frame offset is aligned.
using Bytes = AlignedBytes;

// --- low-level POD packing --------------------------------------------------
template <typename T>
void append_pod(Bytes& buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(ConstByteSpan buf, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  OF_CHECK_MSG(offset + sizeof(T) <= buf.size(),
               "buffer underrun reading " << sizeof(T) << " bytes at offset " << offset);
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

template <typename T>
void append_span(Bytes& buf, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + count * sizeof(T));
}

inline void append_span(Bytes& buf, ConstByteSpan bytes) {
  buf.insert(buf.end(), bytes.begin(), bytes.end());
}

inline void append_span(Bytes& buf, ConstFloatSpan floats) {
  append_span(buf, floats.data(), floats.size());
}

template <typename T>
void read_span(ConstByteSpan buf, std::size_t& offset, T* out, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  OF_CHECK_MSG(count <= (buf.size() - std::min(offset, buf.size())) / sizeof(T),
               "buffer underrun reading span of " << count << " elements at offset " << offset);
  std::memcpy(out, buf.data() + offset, count * sizeof(T));
  offset += count * sizeof(T);
}

// --- scale / accumulate kernels over wire views ------------------------------
// The zero-copy pipeline's workhorses, dispatched through of::simd. The byte
// side may sit at any (unaligned) frame offset, and all carry the scale in
// double: weight scales are doubles end to end, and a premature narrowing to
// float loses the low bits of per-client sample weights.

// out += f32-encode( src[i] * scale ), appended to the buffer. Returns true
// iff every source element was finite — the encode-admission screen fused
// into the store (callers reject the update when it comes back false).
bool append_scaled_span(Bytes& out, ConstFloatSpan src, double scale);

// Same store in the fp16 wire representation (RTNE): 2 bytes per element.
bool append_scaled_f16_span(Bytes& out, ConstFloatSpan src, double scale);

// acc[i] += alpha * f32_at(src, 4*i) for the whole span; src.size() must be
// exactly 4 * acc.size().
void add_scaled_from_bytes(ConstByteSpan src, double alpha, FloatSpan acc);

// fp16 source variant: acc[i] += alpha * f32(f16_at(src, 2*i)); src.size()
// must be exactly 2 * acc.size().
void add_scaled_from_f16_bytes(ConstByteSpan src, double alpha, FloatSpan acc);

// --- tensor wire format ------------------------------------------------------
void serialize_tensor(const Tensor& t, Bytes& out);
Bytes serialize_tensor(const Tensor& t);
Tensor deserialize_tensor(ConstByteSpan buf, std::size_t& offset);
Tensor deserialize_tensor(ConstByteSpan buf);

// Multiple tensors in one frame (a model's parameter list).
Bytes serialize_tensors(const std::vector<Tensor>& ts);
std::vector<Tensor> deserialize_tensors(ConstByteSpan buf);

}  // namespace of::tensor
