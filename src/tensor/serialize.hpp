// Binary (de)serialization of tensors — the wire format shared by all
// communicators. Little-endian, self-describing:
//   u32 ndim | u64 dims[ndim] | f32 data[numel]
// plus helpers for packing arbitrary PODs into byte buffers, used by the
// compression payload formats and the TCP wire protocol.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace of::tensor {

using Bytes = std::vector<std::uint8_t>;

// --- low-level POD packing --------------------------------------------------
template <typename T>
void append_pod(Bytes& buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const Bytes& buf, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  OF_CHECK_MSG(offset + sizeof(T) <= buf.size(),
               "buffer underrun reading " << sizeof(T) << " bytes at offset " << offset);
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

template <typename T>
void append_span(Bytes& buf, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + count * sizeof(T));
}

template <typename T>
void read_span(const Bytes& buf, std::size_t& offset, T* out, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  OF_CHECK_MSG(offset + count * sizeof(T) <= buf.size(),
               "buffer underrun reading span of " << count << " elements at offset " << offset);
  std::memcpy(out, buf.data() + offset, count * sizeof(T));
  offset += count * sizeof(T);
}

// --- tensor wire format ------------------------------------------------------
void serialize_tensor(const Tensor& t, Bytes& out);
Bytes serialize_tensor(const Tensor& t);
Tensor deserialize_tensor(const Bytes& buf, std::size_t& offset);
Tensor deserialize_tensor(const Bytes& buf);

// Multiple tensors in one frame (a model's parameter list).
Bytes serialize_tensors(const std::vector<Tensor>& ts);
std::vector<Tensor> deserialize_tensors(const Bytes& buf);

}  // namespace of::tensor
