// Lightweight non-owning views over contiguous byte / float storage — the
// currency of the zero-copy update pipeline. A span never owns or frees its
// storage; the caller must keep the backing buffer alive and unresized for
// the span's lifetime (DESIGN.md § Update pipeline & memory model spells out
// the aliasing rules per pipeline stage).
//
// Deliberately minimal instead of std::span: only the operations the wire
// path needs, implicit construction from the owning types (`Bytes`,
// `std::vector<float>`) so call sites read naturally, and hard bounds checks
// on subspan arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace of::tensor {

class ConstByteSpan {
 public:
  constexpr ConstByteSpan() = default;
  constexpr ConstByteSpan(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  // Implicit: a whole owned buffer viewed as a span (any allocator — the
  // aligned frame buffers and plain byte vectors both convert).
  template <typename Alloc>
  ConstByteSpan(const std::vector<std::uint8_t, Alloc>& b)
      : data_(b.data()), size_(b.size()) {}

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::uint8_t* begin() const noexcept { return data_; }
  const std::uint8_t* end() const noexcept { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  ConstByteSpan subspan(std::size_t offset) const {
    OF_CHECK_MSG(offset <= size_, "byte-span offset " << offset << " past size " << size_);
    return {data_ + offset, size_ - offset};
  }
  ConstByteSpan subspan(std::size_t offset, std::size_t count) const {
    OF_CHECK_MSG(offset <= size_ && count <= size_ - offset,
                 "byte-span slice [" << offset << ", +" << count << ") past size " << size_);
    return {data_ + offset, count};
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class ConstFloatSpan {
 public:
  constexpr ConstFloatSpan() = default;
  constexpr ConstFloatSpan(const float* data, std::size_t size) : data_(data), size_(size) {}
  ConstFloatSpan(const std::vector<float>& v) : data_(v.data()), size_(v.size()) {}

  const float* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const float* begin() const noexcept { return data_; }
  const float* end() const noexcept { return data_ + size_; }
  float operator[](std::size_t i) const { return data_[i]; }

  ConstFloatSpan subspan(std::size_t offset, std::size_t count) const {
    OF_CHECK_MSG(offset <= size_ && count <= size_ - offset,
                 "float-span slice [" << offset << ", +" << count << ") past size " << size_);
    return {data_ + offset, count};
  }

 private:
  const float* data_ = nullptr;
  std::size_t size_ = 0;
};

class FloatSpan {
 public:
  constexpr FloatSpan() = default;
  constexpr FloatSpan(float* data, std::size_t size) : data_(data), size_(size) {}
  FloatSpan(std::vector<float>& v) : data_(v.data()), size_(v.size()) {}

  float* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  float* begin() const noexcept { return data_; }
  float* end() const noexcept { return data_ + size_; }
  float& operator[](std::size_t i) const { return data_[i]; }

  operator ConstFloatSpan() const noexcept { return {data_, size_}; }

  FloatSpan subspan(std::size_t offset, std::size_t count) const {
    OF_CHECK_MSG(offset <= size_ && count <= size_ - offset,
                 "float-span slice [" << offset << ", +" << count << ") past size " << size_);
    return {data_ + offset, count};
  }

 private:
  float* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace of::tensor
