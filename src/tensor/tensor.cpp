#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "exec/pool.hpp"
#include "simd/simd.hpp"

namespace of::tensor {
namespace {

// Disjoint-write loops below this size are not worth a pool round-trip.
// The gate may depend on the thread count because chunked and serial
// execution write identical bytes; reductions must NOT use it (their chunk
// tree has to be thread-count independent — see sum()).
constexpr std::size_t kParallelCutoff = 1 << 14;

inline bool parallel_worthwhile(std::size_t n) {
  return n >= kParallelCutoff && exec::Pool::global().threads() > 1;
}

// Reductions switch to the fixed chunk tree at this size *regardless of
// thread count*, so threads=1 and threads=N accumulate in the same order.
constexpr std::size_t kReduceChunk = 1 << 15;

}  // namespace

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  OF_CHECK_MSG(data_.size() == shape_numel(shape_),
               "data size " << data_.size() << " does not match shape " << shape_string());
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.gaussian(mean, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(std::size_t n) {
  Tensor t({n});
  std::iota(t.data_.begin(), t.data_.end(), 0.0f);
  return t;
}

Tensor Tensor::from_vector(std::vector<float> v) {
  const std::size_t n = v.size();
  return Tensor({n}, std::move(v));
}

std::size_t Tensor::size(std::size_t dim) const {
  OF_CHECK_MSG(dim < shape_.size(), "dim " << dim << " out of range for " << shape_string());
  return shape_[dim];
}

Tensor Tensor::reshape(Shape new_shape) const {
  OF_CHECK_MSG(shape_numel(new_shape) == numel(),
               "cannot reshape " << shape_string() << " (" << numel() << " elems)");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

float& Tensor::at(std::size_t i) {
  OF_CHECK_MSG(i < data_.size(), "index " << i << " out of range (" << data_.size() << ")");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  OF_CHECK_MSG(i < data_.size(), "index " << i << " out of range (" << data_.size() << ")");
  return data_[i];
}

Tensor& Tensor::fill_(float v) noexcept {
  std::fill(data_.begin(), data_.end(), v);
  return *this;
}

// Elementwise kernels dispatch through of::simd (lane-independent, so the
// vector and scalar tables write identical bytes); the parallel gate only
// shards the range — each shard runs the same kernel.
#define OF_TENSOR_BINARY_INPLACE(name, kernel)                                     \
  Tensor& Tensor::name(const Tensor& other) {                                      \
    OF_CHECK_MSG(same_shape(other), "shape mismatch " << shape_string() << " vs "  \
                                                      << other.shape_string());    \
    const float* o = other.data_.data();                                           \
    float* d = data_.data();                                                       \
    const std::size_t n = data_.size();                                            \
    if (parallel_worthwhile(n)) {                                                  \
      exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {     \
        simd::kernel(d + b, o + b, e - b);                                         \
      });                                                                          \
    } else {                                                                       \
      simd::kernel(d, o, n);                                                       \
    }                                                                              \
    return *this;                                                                  \
  }

OF_TENSOR_BINARY_INPLACE(add_, add)
OF_TENSOR_BINARY_INPLACE(sub_, sub)
OF_TENSOR_BINARY_INPLACE(mul_, mul)
OF_TENSOR_BINARY_INPLACE(div_, div)
#undef OF_TENSOR_BINARY_INPLACE

Tensor& Tensor::add_scalar_(float v) noexcept {
  float* d = data_.data();
  const std::size_t n = data_.size();
  if (parallel_worthwhile(n)) {
    exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      simd::add_scalar(d + b, v, e - b);
    });
  } else {
    simd::add_scalar(d, v, n);
  }
  return *this;
}

Tensor& Tensor::scale_(float v) noexcept {
  float* d = data_.data();
  const std::size_t n = data_.size();
  if (parallel_worthwhile(n)) {
    exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      simd::scale(d + b, v, e - b);
    });
  } else {
    simd::scale(d, v, n);
  }
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  OF_CHECK_MSG(same_shape(other),
               "shape mismatch " << shape_string() << " vs " << other.shape_string());
  const float* o = other.data_.data();
  float* d = data_.data();
  const std::size_t n = data_.size();
  if (parallel_worthwhile(n)) {
    exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      simd::axpy(d + b, o + b, alpha, e - b);
    });
  } else {
    simd::axpy(d, o, alpha, n);
  }
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) noexcept {
  float* d = data_.data();
  const std::size_t n = data_.size();
  // simd::clamp uses the intrinsic operand order (d>lo?d:lo, then t<hi?t:hi),
  // which agrees with min(hi, max(lo, d)) for every input including NaN
  // (both resolve NaN to lo).
  if (parallel_worthwhile(n)) {
    exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      simd::clamp(d + b, lo, hi, e - b);
    });
  } else {
    simd::clamp(d, lo, hi, n);
  }
  return *this;
}

Tensor& Tensor::abs_() noexcept {
  float* d = data_.data();
  const std::size_t n = data_.size();
  if (parallel_worthwhile(n)) {
    exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) d[i] = std::fabs(d[i]);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) d[i] = std::fabs(d[i]);
  }
  return *this;
}

Tensor& Tensor::sign_() noexcept {
  float* d = data_.data();
  const std::size_t n = data_.size();
  const auto sgn = [](float v) { return (v > 0.0f) ? 1.0f : (v < 0.0f ? -1.0f : 0.0f); };
  if (parallel_worthwhile(n)) {
    exec::Pool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) d[i] = sgn(d[i]);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) d[i] = sgn(d[i]);
  }
  return *this;
}

Tensor Tensor::operator+(const Tensor& rhs) const { Tensor t = *this; t.add_(rhs); return t; }
Tensor Tensor::operator-(const Tensor& rhs) const { Tensor t = *this; t.sub_(rhs); return t; }
Tensor Tensor::operator*(const Tensor& rhs) const { Tensor t = *this; t.mul_(rhs); return t; }
Tensor Tensor::operator*(float s) const { Tensor t = *this; t.scale_(s); return t; }
Tensor Tensor::operator+(float s) const { Tensor t = *this; t.add_scalar_(s); return t; }
Tensor Tensor::operator-() const { Tensor t = *this; t.scale_(-1.0f); return t; }

Tensor operator*(float s, const Tensor& t) { return t * s; }

float Tensor::sum() const noexcept {
  // Double accumulation over a fixed chunk tree. The chunk decomposition
  // depends only on (n, kReduceChunk) — never the thread count — so the
  // float result is bitwise identical with exec.threads=1 and =N.
  const float* d = data_.data();
  const std::size_t n = data_.size();
  const auto partial = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += static_cast<double>(d[i]);
    return acc;
  };
  if (n < kReduceChunk) return static_cast<float>(partial(0, n));
  const double acc = exec::Pool::global().parallel_reduce(
      n, kReduceChunk, 0.0, partial, [](double a, double b) { return a + b; });
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  OF_CHECK_MSG(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  OF_CHECK_MSG(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  OF_CHECK_MSG(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm_squared() const noexcept {
  const float* d = data_.data();
  const std::size_t n = data_.size();
  const auto partial = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i)
      acc += static_cast<double>(d[i]) * static_cast<double>(d[i]);
    return acc;
  };
  if (n < kReduceChunk) return static_cast<float>(partial(0, n));
  const double acc = exec::Pool::global().parallel_reduce(
      n, kReduceChunk, 0.0, partial, [](double a, double b) { return a + b; });
  return static_cast<float>(acc);
}

float Tensor::l2_norm() const noexcept { return std::sqrt(l2_norm_squared()); }

float Tensor::dot(const Tensor& other) const {
  OF_CHECK_MSG(numel() == other.numel(), "dot: size mismatch");
  const float* a = data_.data();
  const float* b = other.data_.data();
  const std::size_t n = data_.size();
  const auto partial = [&](std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
      acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
  };
  if (n < kReduceChunk) return static_cast<float>(partial(0, n));
  const double acc = exec::Pool::global().parallel_reduce(
      n, kReduceChunk, 0.0, partial, [](double x, double y) { return x + y; });
  return static_cast<float>(acc);
}

std::size_t Tensor::argmax() const {
  OF_CHECK_MSG(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

std::vector<std::size_t> Tensor::argmax_rows() const {
  OF_CHECK_MSG(ndim() == 2, "argmax_rows requires a 2-D tensor, got " << shape_string());
  const std::size_t rows = shape_[0], cols = shape_[1];
  std::vector<std::size_t> out(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* begin = data_.data() + r * cols;
    out[r] = static_cast<std::size_t>(
        std::distance(begin, std::max_element(begin, begin + cols)));
  }
  return out;
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  OF_CHECK_MSG(ndim() == 2 && rhs.ndim() == 2,
               "matmul requires 2-D tensors, got " << shape_string() << " x "
                                                   << rhs.shape_string());
  const std::size_t m = shape_[0], k = shape_[1];
  OF_CHECK_MSG(rhs.shape_[0] == k, "matmul inner-dim mismatch " << shape_string() << " x "
                                                                << rhs.shape_string());
  const std::size_t n = rhs.shape_[1];
  Tensor out({m, n});
  // ikj loop order: streams rhs rows, keeps out row hot — the standard
  // cache-friendly ordering for row-major GEMM without blocking.
  const float* a = data_.data();
  const float* b = rhs.data_.data();
  float* c = out.data_.data();
  const auto rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        simd::axpy(c + i * n, b + kk * n, aik, n);
      }
    }
  };
  // Output rows are disjoint, so per-row parallelism writes the same bytes
  // as the serial loop for any thread count.
  if (m > 1 && exec::Pool::global().threads() > 1 && m * n * k >= kParallelCutoff) {
    const std::size_t per_row = std::max<std::size_t>(1, n * k);
    const std::size_t grain = std::max<std::size_t>(1, kParallelCutoff / per_row);
    exec::Pool::global().parallel_for(m, grain, rows);
  } else {
    rows(0, m);
  }
  return out;
}

Tensor Tensor::transpose2d() const {
  OF_CHECK_MSG(ndim() == 2, "transpose2d requires a 2-D tensor, got " << shape_string());
  const std::size_t r = shape_[0], c = shape_[1];
  Tensor out({c, r});
  const float* src = data_.data();
  float* dst = out.data_.data();
  const auto rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t j = 0; j < c; ++j) dst[j * r + i] = src[i * c + j];
  };
  if (r > 1 && parallel_worthwhile(r * c)) {
    const std::size_t grain = std::max<std::size_t>(1, kParallelCutoff / std::max<std::size_t>(1, c));
    exec::Pool::global().parallel_for(r, grain, rows);
  } else {
    rows(0, r);
  }
  return out;
}

Tensor Tensor::row(std::size_t r) const {
  OF_CHECK_MSG(ndim() == 2 && r < shape_[0], "row " << r << " out of range for " << shape_string());
  const std::size_t c = shape_[1];
  Tensor out({c});
  std::copy_n(data_.data() + r * c, c, out.data_.data());
  return out;
}

void Tensor::set_row(std::size_t r, const Tensor& v) {
  OF_CHECK_MSG(ndim() == 2 && r < shape_[0], "row " << r << " out of range for " << shape_string());
  const std::size_t c = shape_[1];
  OF_CHECK_MSG(v.numel() == c, "set_row size mismatch");
  std::copy_n(v.data_.data(), c, data_.data() + r * c);
}

bool Tensor::allclose(const Tensor& other, float atol, float rtol) const {
  if (!same_shape(other)) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const float diff = std::fabs(data_[i] - other.data_[i]);
    if (diff > atol + rtol * std::fabs(other.data_[i])) return false;
  }
  return true;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

std::string Tensor::to_string(std::size_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_string() << " {";
  const std::size_t n = std::min(max_elems, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (n < data_.size()) os << ", ...";
  os << '}';
  return os.str();
}

Tensor flatten_all(const std::vector<Tensor>& tensors) {
  std::size_t total = 0;
  for (const auto& t : tensors) total += t.numel();
  Tensor flat({total});
  std::size_t off = 0;
  for (const auto& t : tensors) {
    std::copy_n(t.data(), t.numel(), flat.data() + off);
    off += t.numel();
  }
  return flat;
}

void unflatten_into(const Tensor& flat, std::vector<Tensor>& out) {
  std::size_t total = 0;
  for (const auto& t : out) total += t.numel();
  OF_CHECK_MSG(total == flat.numel(),
               "unflatten_into: flat has " << flat.numel() << " elems, targets need " << total);
  std::size_t off = 0;
  for (auto& t : out) {
    std::copy_n(flat.data() + off, t.numel(), t.data());
    off += t.numel();
  }
}

}  // namespace of::tensor
