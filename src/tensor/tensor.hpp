// Dense float32 tensor — the PyTorch-tensor stand-in for OmniFed-C++.
//
// Deliberately minimal: contiguous row-major storage, value semantics,
// shape-checked arithmetic, and exactly the operations the nn/ and
// compression/ layers need. No views, no strides, no autograd here —
// gradients are computed by hand-derived module backward passes in of::nn.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "tensor/rng.hpp"
#include "tensor/span.hpp"

namespace of::tensor {

using Shape = std::vector<std::size_t>;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  // --- factories -----------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  static Tensor arange(std::size_t n);
  static Tensor from_vector(std::vector<float> v);

  // --- shape ---------------------------------------------------------------
  const Shape& shape() const noexcept { return shape_; }
  std::size_t ndim() const noexcept { return shape_.size(); }
  std::size_t size(std::size_t dim) const;
  std::size_t numel() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  bool same_shape(const Tensor& other) const noexcept { return shape_ == other.shape_; }
  Tensor reshape(Shape new_shape) const;
  Tensor flatten() const { return reshape({numel()}); }

  // --- element access ------------------------------------------------------
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::vector<float>& vec() noexcept { return data_; }
  const std::vector<float>& vec() const noexcept { return data_; }
  FloatSpan span() noexcept { return {data_.data(), data_.size()}; }
  ConstFloatSpan span() const noexcept { return {data_.data(), data_.size()}; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }
  float& at(std::size_t i);
  float at(std::size_t i) const;
  // 2-D accessors (checked in debug builds only — hot path).
  float& operator()(std::size_t r, std::size_t c) {
    OF_ASSERT(ndim() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    OF_ASSERT(ndim() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  // --- in-place ops (return *this for chaining) ----------------------------
  Tensor& fill_(float v) noexcept;
  Tensor& zero_() noexcept { return fill_(0.0f); }
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);
  Tensor& div_(const Tensor& other);
  Tensor& add_scalar_(float v) noexcept;
  Tensor& scale_(float v) noexcept;
  // this += alpha * other (axpy). Workhorse of every optimizer/aggregator.
  Tensor& add_scaled_(const Tensor& other, float alpha);
  Tensor& clamp_(float lo, float hi) noexcept;
  Tensor& abs_() noexcept;
  Tensor& sign_() noexcept;

  // --- out-of-place arithmetic ---------------------------------------------
  Tensor operator+(const Tensor& rhs) const;
  Tensor operator-(const Tensor& rhs) const;
  Tensor operator*(const Tensor& rhs) const;  // elementwise
  Tensor operator*(float s) const;
  Tensor operator+(float s) const;
  Tensor operator-() const;

  // --- reductions ----------------------------------------------------------
  float sum() const noexcept;
  float mean() const;
  float min() const;
  float max() const;
  float l2_norm() const noexcept;
  float l2_norm_squared() const noexcept;
  float dot(const Tensor& other) const;
  std::size_t argmax() const;
  // Row-wise argmax for a 2-D tensor (predictions from logits).
  std::vector<std::size_t> argmax_rows() const;

  // --- linear algebra ------------------------------------------------------
  // (m,k) x (k,n) -> (m,n)
  Tensor matmul(const Tensor& rhs) const;
  Tensor transpose2d() const;

  // --- misc ----------------------------------------------------------------
  // Copy a row of a 2-D tensor into a 1-D tensor.
  Tensor row(std::size_t r) const;
  void set_row(std::size_t r, const Tensor& v);
  bool allclose(const Tensor& other, float atol = 1e-5f, float rtol = 1e-5f) const;
  std::string shape_string() const;
  std::string to_string(std::size_t max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

Tensor operator*(float s, const Tensor& t);

// Total number of elements implied by a shape.
std::size_t shape_numel(const Shape& shape);

// --- flat parameter-vector helpers used by algorithms & compression --------
// Concatenate a list of tensors into a single flat vector (the "model
// update" that crosses the wire) and scatter it back.
Tensor flatten_all(const std::vector<Tensor>& tensors);
void unflatten_into(const Tensor& flat, std::vector<Tensor>& out);

}  // namespace of::tensor
