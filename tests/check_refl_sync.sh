#!/bin/sh
# Descriptor/exporter sync lint (DESIGN.md §13).
#
# The Prometheus families, /fleet.json keys and /fleet.csv columns for
# per-node telemetry are *generated* from Reflect<TelemetrySummary> — adding
# a per-field series by hand to the renderer reintroduces the drift of::refl
# removed. This check fails when src/obs/telemetry.cpp grows a hand-written
# `of_fleet_<series>` literal that is not one of the known derived series
# (cross-field computations a per-field descriptor cannot express). To add a
# plain per-field series, extend the fields() descriptor in telemetry.hpp
# instead; to add a genuinely derived series, list it below.
#
# Usage: check_refl_sync.sh <repo-root>
set -eu

repo=${1:?usage: check_refl_sync.sh <repo-root>}
cpp="$repo/src/obs/telemetry.cpp"
hpp="$repo/src/obs/telemetry.hpp"

[ -r "$cpp" ] || { echo "check_refl_sync: missing $cpp" >&2; exit 1; }
[ -r "$hpp" ] || { echo "check_refl_sync: missing $hpp" >&2; exit 1; }

# Derived series that legitimately stay hand-written in prometheus_text():
# run metadata, cross-field/cross-round computations, and the per-client
# round-latency histogram (a log2-bucket exposition no single descriptor
# field can express).
allowed="info nodes pool_hit_rate updates_total phase_seconds_total
client_round_seconds client_round_seconds_bucket client_round_seconds_sum
client_round_seconds_count"

# Every hand-written `of_fleet_<name>` literal in the renderer (the generated
# families never appear as literals — prom_families builds them from the
# descriptors at runtime). `of_fleet_` / `of_fleet_combiner_` /
# `of_fleet_critical_path_` prefixes passed to prom_families carry no series
# suffix and drop out of the grep below; `critical_path_info` normalizes to
# the allowed `info` row like the combiner/serve twins.
found=$(grep -o '"[^"]*of_fleet_[A-Za-z0-9_]*' "$cpp" \
  | sed 's/.*of_fleet_//' | sed 's/^combiner_//' | sed 's/^serve_//' \
  | sed 's/^critical_path_//' \
  | grep -v '^$' | sort -u)

status=0
for name in $found; do
  ok=1
  for a in $allowed; do [ "$name" = "$a" ] && ok=0; done
  if [ "$ok" = 1 ]; then
    echo "check_refl_sync: hand-written series 'of_fleet_${name}' in" >&2
    echo "  src/obs/telemetry.cpp — per-field series must come from the" >&2
    echo "  Reflect<> fields() descriptor in src/obs/telemetry.hpp (or be" >&2
    echo "  listed as a derived series in tests/check_refl_sync.sh)." >&2
    status=1
  fi
done

# The reverse direction: every exporter-visible descriptor name must be
# absent from the renderer as a literal (it would shadow the generated
# family), and the descriptor itself must still exist.
grep -q 'Reflect<of::obs::TelemetrySummary>' "$hpp" || {
  echo "check_refl_sync: Reflect<TelemetrySummary> descriptor missing from" >&2
  echo "  src/obs/telemetry.hpp" >&2
  status=1
}

# The serving tier's of_fleet_serve_* gauges are generated the same way.
grep -q 'Reflect<of::obs::Fleet::ServeHealth>' "$hpp" || {
  echo "check_refl_sync: Reflect<Fleet::ServeHealth> descriptor missing from" >&2
  echo "  src/obs/telemetry.hpp" >&2
  status=1
}

# The attribution engine's of_fleet_critical_path_* families too
# (src/obs/attribution.hpp).
grep -q 'Reflect<of::obs::CriticalPath>' "$repo/src/obs/attribution.hpp" || {
  echo "check_refl_sync: Reflect<CriticalPath> descriptor missing from" >&2
  echo "  src/obs/attribution.hpp" >&2
  status=1
}

exit $status
