#!/bin/sh
# Async-signal-safety lint (DESIGN.md §16).
#
# The profiler's SIGPROF handler and the flight recorder's crash-dump path
# run inside signal handlers: they may touch only pre-allocated memory,
# plain thread-locals, atomics, and the short POSIX async-signal-safe list
# (clock_gettime, open/write/close, sigaction, raise, backtrace-after-
# priming). Both TUs fence those regions between `SIGNAL-SAFE BEGIN` and
# `SIGNAL-SAFE END` markers; this check fails when a banned construct —
# anything that can allocate, lock, or enter stdio — appears inside a
# fenced region, or when a TU that should have one lost its markers.
#
# Usage: check_signal_safety.sh <repo-root>
set -eu

repo=${1:?usage: check_signal_safety.sh <repo-root>}

# Tokens that are never async-signal-safe. Word-bounded so identifiers like
# "newest" or comments mentioning "allocation" don't trip it.
banned='\bmalloc\b|\bcalloc\b|\brealloc\b|\bfree\b|\bprintf\b|\bfprintf\b|\bsnprintf\b|\bsprintf\b|\bputs\b|\bfwrite\b|\bfopen\b|std::mutex|lock_guard|unique_lock|scoped_lock|\bnew\b|\bdelete\b|std::string\b|std::vector\b|std::map\b|std::ostringstream|std::function|make_unique|push_back|emplace'

status=0
for tu in src/obs/profiler.cpp src/obs/flightrec.cpp; do
  f="$repo/$tu"
  [ -r "$f" ] || { echo "check_signal_safety: missing $f" >&2; status=1; continue; }
  grep -q 'SIGNAL-SAFE BEGIN' "$f" && grep -q 'SIGNAL-SAFE END' "$f" || {
    echo "check_signal_safety: $tu lost its SIGNAL-SAFE BEGIN/END markers —" >&2
    echo "  the handler region must stay fenced so this lint can see it." >&2
    status=1
    continue
  }
  hits=$(sed -n '/SIGNAL-SAFE BEGIN/,/SIGNAL-SAFE END/p' "$f" \
    | grep -nE "$banned" || true)
  if [ -n "$hits" ]; then
    echo "check_signal_safety: non-async-signal-safe construct inside the" >&2
    echo "  fenced region of $tu:" >&2
    echo "$hits" | sed 's/^/    /' >&2
    status=1
  fi
done

exit $status
