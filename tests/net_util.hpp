// Shared test helper: ask the kernel for a free loopback TCP port instead
// of hardcoding one. Hardcoded constants collide whenever ctest runs suites
// in parallel (two TUs binding the same 474xx port race to EADDRINUSE);
// bind-to-zero hands out a port nothing currently holds, and the kernel's
// ephemeral allocator walks forward, so the window between close() here and
// the test's own bind() is not re-issued in practice.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>

namespace of::testutil {

inline std::uint16_t ephemeral_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

// A base port with `count` consecutive free ports starting at it, for
// configs that derive per-group ports as base+group (HierarchicalTopology's
// inner tier). A single bind-to-zero only vets the base; base+1 can already
// be held by a parallel suite, which shows up as a 60 s quorum timeout, not
// a bind error. Holds all `count` sockets bound before releasing any.
inline std::uint16_t ephemeral_port_block(int count) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint16_t base = ephemeral_port();
    if (base == 0 || base + count >= 65536) continue;
    int fds[16];
    int held = 0;
    for (; held < count && held < 16; ++held) {
      fds[held] = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fds[held] < 0) break;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + held));
      if (::bind(fds[held], reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        ::close(fds[held]);
        break;
      }
    }
    for (int i = 0; i < held; ++i) ::close(fds[i]);
    if (held == count) return base;
  }
  return 0;
}

}  // namespace of::testutil
