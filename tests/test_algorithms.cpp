#include <gtest/gtest.h>

#include "algorithms/builtin.hpp"
#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "data/partition.hpp"
#include "nn/zoo.hpp"

namespace {

using of::algorithms::Algorithm;
using of::algorithms::ServerState;
using of::algorithms::TrainContext;
using of::config::ConfigNode;
using of::config::parse_yaml;
using of::tensor::Rng;
using of::tensor::Tensor;

// --- registry ----------------------------------------------------------------------

TEST(Registry, AllElevenPaperAlgorithmsRegistered) {
  const auto names = of::algorithms::algorithm_names();
  EXPECT_EQ(names.size(), 11u);
  for (const auto& n : names) {
    auto algo = of::algorithms::make_algorithm(n);
    EXPECT_EQ(algo->name(), n);
  }
  // Paper-style fully-qualified targets resolve too.
  auto a = of::algorithms::make_algorithm("src.omnifed.algorithm.FedProx");
  EXPECT_EQ(a->name(), "FedProx");
  EXPECT_THROW(of::algorithms::make_algorithm("FedSGD"), std::runtime_error);
}

// --- parameter filters ----------------------------------------------------------------

TEST(Filters, FedBnNeverSharesBatchNormParams) {
  of::algorithms::FedBN algo;
  auto model = of::nn::zoo::make_model("resnet18_mini", 16, 4, 1);
  std::size_t bn_params = 0;
  for (auto* p : model.parameters()) {
    if (p->is_batchnorm) {
      ++bn_params;
      EXPECT_FALSE(algo.shares_parameter(*p)) << p->name;
    } else {
      EXPECT_TRUE(algo.shares_parameter(*p));
    }
  }
  EXPECT_GT(bn_params, 0u);
}

TEST(Filters, FedPerKeepsHeadLocal) {
  of::algorithms::FedPer algo;
  auto model = of::nn::zoo::make_model("vgg11_mini", 16, 4, 1);
  for (auto* p : model.parameters())
    EXPECT_EQ(algo.shares_parameter(*p), !p->is_head) << p->name;
}

TEST(Filters, PayloadSizeShrinksAccordingly) {
  auto model = of::nn::zoo::make_model("resnet18_mini", 16, 4, 1);
  of::algorithms::FedAvg all;
  of::algorithms::FedBN bn;
  of::algorithms::FedPer per;
  EXPECT_GT(all.initial_global(model).size(), bn.initial_global(model).size());
  EXPECT_GT(all.initial_global(model).size(), per.initial_global(model).size());
}

// --- server updates on synthetic payloads ----------------------------------------------

std::vector<Tensor> single(float v) { return {of::tensor::Tensor({2}, v)}; }

TEST(ServerUpdate, FedAvgIsIdentityOnMean) {
  of::algorithms::FedAvg algo;
  ServerState state;
  state.params = ConfigNode::map();
  state.global = single(0.0f);
  const auto out = algo.server_update(state, single(3.0f));
  EXPECT_FLOAT_EQ(out[0][0], 3.0f);
}

TEST(ServerUpdate, FedMomAcceleratesRepeatedSteps) {
  of::algorithms::FedMom algo;
  ServerState state;
  state.params = parse_yaml("beta: 0.9\n");
  state.global = single(10.0f);
  // Clients keep reporting mean = w_prev − 1 (constant descent direction).
  float prev = 10.0f;
  float first_step = 0.0f, fifth_step = 0.0f;
  for (int round = 0; round < 5; ++round) {
    state.round = static_cast<std::size_t>(round);
    const auto out = algo.server_update(state, single(prev - 1.0f));
    const float step = prev - out[0][0];
    if (round == 0) first_step = step;
    if (round == 4) fifth_step = step;
    prev = out[0][0];
  }
  EXPECT_GT(fifth_step, first_step * 2.0f);  // momentum accumulates
}

TEST(ServerUpdate, FedNovaUsesMeanTau) {
  of::algorithms::FedNova algo;
  ServerState state;
  state.params = ConfigNode::map();
  state.global = single(1.0f);
  // payload = [normalized deltas..., tau]; w ← w − mean_tau · mean_delta.
  std::vector<Tensor> mean = single(0.5f);
  mean.push_back(of::tensor::Tensor({1}, 4.0f));
  const auto out = algo.server_update(state, mean);
  EXPECT_FLOAT_EQ(out[0][0], 1.0f - 4.0f * 0.5f);
}

TEST(ServerUpdate, ScaffoldUpdatesBothHalves) {
  of::algorithms::Scaffold algo;
  ServerState state;
  state.params = ConfigNode::map();
  state.global = {of::tensor::Tensor({2}, 1.0f), of::tensor::Tensor({2}, 0.0f)};  // [w, c]
  const std::vector<Tensor> mean = {of::tensor::Tensor({2}, 0.5f),
                                    of::tensor::Tensor({2}, -0.1f)};  // [Δw, Δc]
  const auto out = algo.server_update(state, mean);
  EXPECT_FLOAT_EQ(out[0][0], 1.5f);
  EXPECT_FLOAT_EQ(out[1][0], -0.1f);
}

TEST(ServerUpdate, DiLoCoOuterMomentumDescends) {
  of::algorithms::DiLoCo algo;
  ServerState state;
  state.params = parse_yaml("outer_lr: 1.0\nouter_momentum: 0.0\n");
  state.global = single(5.0f);
  // pseudo-gradient mean = 2 (pointing from w_local back to w_start).
  const auto out = algo.server_update(state, single(2.0f));
  EXPECT_FLOAT_EQ(out[0][0], 3.0f);  // w − lr·g with zero momentum
}

// --- end-to-end learning sweep over all algorithms (paper Table 1 shape) ---------------

ConfigNode sweep_config(const std::string& algo) {
  ConfigNode cfg = parse_yaml(R"(
seed: 3
topology:
  _target_: CentralizedTopology
  num_clients: 4
datamodule:
  preset: toy
  partition: dirichlet
  alpha: 0.5
  batch_size: 16
model: mlp_tiny
algorithm:
  global_rounds: 6
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 6
)");
  cfg.set_path("algorithm._target_", ConfigNode::string(algo));
  // Algorithm-specific defaults mirroring the paper's configs.
  if (algo == "FedProx") cfg.set_path("algorithm.mu", ConfigNode::floating(0.01));
  if (algo == "Moon") {
    cfg.set_path("algorithm.mu", ConfigNode::floating(0.5));
    cfg.set_path("algorithm.temperature", ConfigNode::floating(0.5));
  }
  if (algo == "FedDyn") cfg.set_path("algorithm.alpha", ConfigNode::floating(0.01));
  if (algo == "Ditto") cfg.set_path("algorithm.lambda", ConfigNode::floating(0.5));
  if (algo == "DiLoCo") {
    cfg.set_path("algorithm.inner_lr", ConfigNode::floating(0.003));
    cfg.set_path("algorithm.outer_lr", ConfigNode::floating(0.7));
  }
  return cfg;
}

class AlgorithmSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmSweep, TrainsOnCentralizedTopology) {
  of::core::Engine engine(sweep_config(GetParam()));
  const auto result = engine.run();
  ASSERT_EQ(result.rounds.size(), 6u);
  // Every algorithm must beat 4-class random chance (25%) on the easy toy
  // task after 6 rounds; most reach far higher.
  EXPECT_GT(result.final_accuracy, 0.3f) << GetParam();
  EXPECT_EQ(result.algorithm, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllEleven, AlgorithmSweep,
                         ::testing::ValuesIn(of::algorithms::algorithm_names()));

// --- behavioural distinctions ------------------------------------------------------------

TEST(Behaviour, FedProxStaysCloserToGlobalThanFedAvg) {
  // With a huge μ, FedProx's local model barely moves from the global.
  auto run_drift = [](const char* algo, double mu) {
    ConfigNode cfg = sweep_config(algo);
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(1));
    if (mu > 0) cfg.set_path("algorithm.mu", ConfigNode::floating(mu));
    of::core::Engine engine(cfg);
    return engine.run().rounds.back().train_loss;
  };
  // Loss under extreme proximal pull stays near the untrained model's loss.
  const double fedavg_loss = run_drift("FedAvg", 0.0);
  const double pinned_loss = run_drift("FedProx", 10000.0);
  EXPECT_LT(fedavg_loss, pinned_loss);
}

TEST(Behaviour, FedAvgDeltaMatchesFedAvgExactly) {
  // Different wire encoding, identical mathematics: global = mean(w_i).
  of::core::Engine a(sweep_config("FedAvg"));
  ConfigNode cfg = sweep_config("FedAvgDelta");
  of::core::Engine b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_NEAR(ra.final_accuracy, rb.final_accuracy, 1e-6f);
  EXPECT_NEAR(ra.rounds.back().train_loss, rb.rounds.back().train_loss, 1e-5);
}

TEST(Behaviour, DeltaEncodingCompressesBetterThanParameterEncoding) {
  // At a high sparsification factor, compressing deltas (gradient-like)
  // retains far more learning signal than compressing raw parameters.
  auto run_with = [](const char* algo) {
    ConfigNode cfg = sweep_config(algo);
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(8));
    cfg.set_path("eval_every", ConfigNode::integer(8));
    cfg.set_path("compression._target_", ConfigNode::string("TopK"));
    cfg.set_path("compression.k", ConfigNode::string("50x"));
    cfg.set_path("compression.error_feedback", ConfigNode::boolean(true));
    of::core::Engine engine(cfg);
    return engine.run().final_accuracy;
  };
  EXPECT_GE(run_with("FedAvgDelta") + 0.02f, run_with("FedAvg"));
}

TEST(Behaviour, ScaffoldStableUnderMomentumConfig) {
  // Regression: the node optimizer runs momentum 0.9, but Scaffold must
  // swap in plain SGD locally or its control variates mis-scale by
  // ~1/(1−β) and training diverges at ordinary learning rates.
  ConfigNode cfg = sweep_config("Scaffold");
  cfg.set_path("algorithm.lr", ConfigNode::floating(0.1));
  cfg.set_path("algorithm.local_epochs", ConfigNode::integer(2));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(8));
  cfg.set_path("eval_every", ConfigNode::integer(8));
  of::core::Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.5f);
}

TEST(Behaviour, ScaffoldControlVariatesChangeTraining) {
  ConfigNode cfg = sweep_config("Scaffold");
  of::core::Engine scaffold(cfg);
  of::core::Engine fedavg(sweep_config("FedAvg"));
  const auto rs = scaffold.run();
  const auto rf = fedavg.run();
  // Both learn; trajectories differ (Scaffold corrects drift).
  EXPECT_GT(rs.final_accuracy, 0.3f);
  EXPECT_NE(rs.rounds.back().train_loss, rf.rounds.back().train_loss);
}

TEST(Behaviour, DittoPersonalModelIsEvaluated) {
  of::algorithms::Ditto algo;
  TrainContext ctx;
  auto model = of::nn::zoo::make_model("mlp_tiny", 8, 2, 1);
  ctx.model = &model;
  // Before any round the personal model does not exist yet.
  EXPECT_EQ(algo.eval_model(ctx), &model);
  ctx.aux_model = model.clone();
  EXPECT_EQ(algo.eval_model(ctx), &ctx.aux_model);
}

TEST(Behaviour, FedBnOnRingAndHierarchicalToo) {
  for (const char* topo : {"RingTopology", "HierarchicalTopology"}) {
    ConfigNode cfg = sweep_config("FedBN");
    cfg.set_path("model", ConfigNode::string("mobilenetv3_mini"));
    cfg.set_path("topology._target_", ConfigNode::string(topo));
    cfg.set_path("topology.num_nodes", ConfigNode::integer(4));
    cfg.set_path("topology.groups", ConfigNode::integer(2));
    cfg.set_path("topology.group_size", ConfigNode::integer(2));
    cfg.set_path("topology.outer_comm._target_",
                 ConfigNode::string("TorchDistCommunicator"));
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(3));
    cfg.set_path("eval_every", ConfigNode::integer(3));
    of::core::Engine engine(cfg);
    EXPECT_GT(engine.run().final_accuracy, 0.3f) << topo;
  }
}

TEST(Behaviour, EvaluateAccuracyOnTrivialModel) {
  auto model = of::nn::zoo::make_model("mlp_tiny", 16, 4, 5);
  const auto tt = of::data::make_synthetic(of::data::preset("toy"), 5);
  const float acc = of::algorithms::evaluate_accuracy(model, tt.test);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
}

}  // namespace
