// Combiner-tier tests (DESIGN.md §10): the streaming partial-sum path that
// lets a hierarchical tree aggregate 10k clients with O(model × combiners)
// coordinator state. Covers the StreamingSum algebra against the reference
// collect-then-mean path, partial-frame composition across tiers, a real
// 2-level TCP tree with deadline-cut stragglers, and the fleet health rows.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/star.hpp"
#include "comm/tcp.hpp"
#include "net_util.hpp"
#include "core/frame_pool.hpp"
#include "core/payload.hpp"
#include "obs/telemetry.hpp"

namespace {

using of::comm::Communicator;
using of::comm::TcpCommunicator;
using of::core::FramePool;
using of::core::StreamingSum;
using of::core::encode_update;
using of::core::mean_updates;
using of::tensor::Bytes;
using of::tensor::Tensor;

namespace star = of::comm::star;

// Integer-valued payload per client: float sums stay exact, so tree-shaped
// and flat aggregation must agree bitwise, not just approximately.
std::vector<Tensor> client_payload(int id) {
  return {Tensor::full({4}, static_cast<float>(id + 1)),
          Tensor::full({3}, static_cast<float>(2 * id))};
}

constexpr std::size_t kModelBytes = (4 + 3) * sizeof(float);

TEST(StreamingSum, MatchesMeanUpdatesBitwise) {
  FramePool pool;
  std::vector<Bytes> frames;
  StreamingSum sum(pool);
  for (int c = 0; c < 5; ++c) {
    frames.push_back(encode_update(client_payload(c), 1.0, {}, c, 5));
    sum.add(frames.back());
  }
  EXPECT_EQ(sum.count(), 5u);
  const auto streamed = sum.finish_mean();
  const auto reference = mean_updates(frames, nullptr, nullptr, &pool);
  ASSERT_EQ(streamed.size(), reference.size());
  for (std::size_t t = 0; t < streamed.size(); ++t)
    for (std::size_t i = 0; i < streamed[t].numel(); ++i)
      EXPECT_EQ(streamed[t][i], reference[t][i]);
}

TEST(StreamingSum, SkipFramesDoNotCount) {
  FramePool pool;
  StreamingSum sum(pool);
  sum.add(of::core::encode_skip_update());
  sum.add(encode_update(client_payload(3), 1.0, {}, 0, 1));
  sum.add(of::core::encode_skip_update());
  EXPECT_EQ(sum.count(), 1u);
  const auto mean = sum.finish_mean();
  EXPECT_EQ(mean[0][0], 4.0f);
}

TEST(StreamingSum, PartialFramesComposeAcrossTiers) {
  // Two combiners with unequal group sizes fold their clients locally, emit
  // partials, and a root folds the partials: the result must equal the flat
  // mean over all clients, bitwise.
  FramePool pool;
  std::vector<Bytes> all_frames;
  StreamingSum root(pool);
  int next_id = 0;
  for (const int group_size : {2, 3}) {
    StreamingSum combiner(pool);
    for (int i = 0; i < group_size; ++i, ++next_id) {
      all_frames.push_back(encode_update(client_payload(next_id), 1.0, {}, next_id, 5));
      combiner.add(all_frames.back());
    }
    Bytes partial;
    combiner.encode_partial_into(1.0, nullptr, partial);
    root.add_partial(partial);
  }
  EXPECT_EQ(root.count(), 5u);
  const auto tree = root.finish_mean();
  const auto flat = mean_updates(all_frames, nullptr, nullptr, &pool);
  for (std::size_t t = 0; t < tree.size(); ++t)
    for (std::size_t i = 0; i < tree[t].numel(); ++i)
      EXPECT_EQ(tree[t][i], flat[t][i]);
}

TEST(StreamingSum, EmptyPartialIsASkip) {
  FramePool pool;
  StreamingSum empty(pool);
  Bytes partial;
  empty.encode_partial_into(1.0, nullptr, partial);
  StreamingSum root(pool);
  root.add_partial(partial);  // contributes nothing
  root.add(encode_update(client_payload(7), 1.0, {}, 0, 1));
  EXPECT_EQ(root.count(), 1u);
}

// --- end-to-end: 2-level combiner tree over real TCP -------------------------------
//
// Outer star: root (group 0's combiner) + 2 more combiners. Each combiner
// serves an inner TCP star of 3 trainers. Group 1's last trainer stalls past
// the combiner deadline and is cut; the tree's mean must equal the flat
// survivor-set mean bitwise, while every combiner's aggregation state stays
// O(model) regardless of group size.

struct TreeResult {
  std::vector<Tensor> mean;
  std::vector<int> dropped;
  bool deadline_hit = false;
  std::size_t peak_bytes = 0;
};

TEST(CombinerTree, TcpTreeWithStragglersMatchesFlatStar) {
  constexpr int kGroups = 3;
  constexpr int kTrainersPerGroup = 3;
  const std::uint16_t kInnerPort[kGroups] = {of::testutil::ephemeral_port(),
                                             of::testutil::ephemeral_port(),
                                             of::testutil::ephemeral_port()};
  const std::uint16_t kOuterPort = of::testutil::ephemeral_port();
  const int kStraggler = 1 * kTrainersPerGroup + 2;  // group 1, local rank 3

  star::PartialGatherOptions group_opt;
  group_opt.min_clients = kTrainersPerGroup - 1;
  group_opt.deadline_seconds = 1.5;  // generous: the host may be 1 core
  group_opt.quorum_timeout_seconds = 10.0;
  star::PartialGatherOptions outer_opt;  // combiners are never cut
  outer_opt.min_clients = kGroups - 1;
  outer_opt.deadline_seconds = 30.0;
  outer_opt.quorum_timeout_seconds = 30.0;

  std::vector<TreeResult> results(kGroups);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(kGroups * (1 + kTrainersPerGroup));
  std::size_t err_slot = 0;
  // Real trainers hold their connection for the whole round; if a test client
  // destructs right after sending, the hub sees a dead peer at gather start
  // and drops it without looking at the inbox. Keep everyone alive until the
  // root has its mean (round_done), and keep hubs alive until every trainer
  // has finished — the straggler still needs a live hub for its late send.
  std::atomic<bool> round_done{false};
  std::atomic<int> trainers_left{kGroups * kTrainersPerGroup};

  for (int g = 0; g < kGroups; ++g) {
    // Combiner: inner hub + outer member (root when g == 0).
    threads.emplace_back([&, g, slot = err_slot++] {
      try {
        FramePool pool;
        auto inner = TcpCommunicator::make_server(kInnerPort[g], 1 + kTrainersPerGroup);
        std::unique_ptr<TcpCommunicator> outer;
        if (g == 0) outer = TcpCommunicator::make_server(kOuterPort, kGroups);
        else outer = TcpCommunicator::make_client("127.0.0.1", kOuterPort, g, kGroups);

        StreamingSum sum(pool);
        const auto got = star::gather_bytes_streaming(
            *inner, Bytes{}, [&](int, Bytes&& f) { sum.add(f); }, group_opt);
        Bytes partial;
        sum.encode_partial_into(1.0, nullptr, partial);
        results[g].dropped = got.dropped;
        results[g].deadline_hit = got.deadline_hit;
        results[g].peak_bytes = sum.peak_bytes();

        if (g == 0) {
          StreamingSum root(pool);
          root.add_partial(partial);
          (void)star::gather_bytes_streaming(
              *outer, partial, [&](int, Bytes&& f) { root.add_partial(f); },
              outer_opt);
          results[0].mean = root.finish_mean();
          round_done.store(true);
        } else {
          (void)star::gather_bytes_streaming(*outer, partial, [](int, Bytes&&) {},
                                             outer_opt);
        }
        while (trainers_left.load() > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
      } catch (...) {
        errors[slot] = std::current_exception();
      }
    });
    // Trainers.
    for (int t = 0; t < kTrainersPerGroup; ++t) {
      const int id = g * kTrainersPerGroup + t;
      threads.emplace_back([&, g, id, slot = err_slot++] {
        try {
          const int local_rank = 1 + id % kTrainersPerGroup;
          auto c = TcpCommunicator::make_client("127.0.0.1", kInnerPort[g],
                                                local_rank, 1 + kTrainersPerGroup);
          if (id == kStraggler)
            std::this_thread::sleep_for(std::chrono::milliseconds(3500));
          const Bytes frame = encode_update(client_payload(id), 1.0, {}, id,
                                            kGroups * kTrainersPerGroup);
          (void)star::gather_bytes_streaming(*c, frame, [](int, Bytes&&) {},
                                             group_opt);
          while (!round_done.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        } catch (...) {
          errors[slot] = std::current_exception();
        }
        trainers_left.fetch_sub(1);
      });
    }
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  // Only group 1 hit its deadline, cutting exactly the straggler.
  EXPECT_FALSE(results[0].deadline_hit);
  EXPECT_TRUE(results[1].deadline_hit);
  EXPECT_FALSE(results[2].deadline_hit);
  ASSERT_EQ(results[1].dropped.size(), 1u);
  EXPECT_TRUE(results[0].dropped.empty());
  EXPECT_TRUE(results[2].dropped.empty());

  // Flat reference: mean over the survivor set.
  FramePool pool;
  std::vector<Bytes> survivors;
  for (int id = 0; id < kGroups * kTrainersPerGroup; ++id)
    if (id != kStraggler)
      survivors.push_back(encode_update(client_payload(id), 1.0, {}, id,
                                        kGroups * kTrainersPerGroup));
  const auto flat = mean_updates(survivors, nullptr, nullptr, &pool);
  ASSERT_EQ(results[0].mean.size(), flat.size());
  for (std::size_t t = 0; t < flat.size(); ++t)
    for (std::size_t i = 0; i < flat[t].numel(); ++i)
      EXPECT_EQ(results[0].mean[t][i], flat[t][i]);

  // The O(model × combiners) bound: each combiner's aggregation state is a
  // couple of model-sized buffers, never clients × model.
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_GT(results[g].peak_bytes, 0u);
    EXPECT_LE(results[g].peak_bytes, 4 * kModelBytes)
        << "combiner " << g << " held per-client state";
  }
}

// --- fleet health rows --------------------------------------------------------------

TEST(FleetCombiners, HealthRowsRenderInBothViews) {
  auto& fleet = of::obs::Fleet::global();
  fleet.reset(0xABCD);
  of::obs::Fleet::CombinerHealth h;
  h.group = 1;
  h.round = 3;
  h.participated = 7;
  h.expected = 8;
  h.dropped = 1;
  h.deadline_hit = true;
  h.agg_peak_bytes = 1234;
  h.seconds = 0.25;
  fleet.record_combiner(h);
  h.group = 2;
  h.participated = 8;
  h.dropped = 0;
  h.deadline_hit = false;
  fleet.record_combiner(h);

  const auto rows = fleet.combiners();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group, 1);
  EXPECT_EQ(rows[1].group, 2);

  const std::string prom = fleet.prometheus_text();
  EXPECT_NE(prom.find("of_fleet_combiner_participated{group=\"1\"} 7"),
            std::string::npos);
  EXPECT_NE(prom.find("of_fleet_combiner_dropped{group=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("of_fleet_combiner_agg_peak_bytes{group=\"2\"} 1234"),
            std::string::npos);

  const std::string health = fleet.health_text();
  EXPECT_NE(health.find("combiner 1:"), std::string::npos);
  EXPECT_NE(health.find("combiner 2:"), std::string::npos);
  fleet.reset(0);  // leave the singleton clean for other suites
}

}  // namespace
