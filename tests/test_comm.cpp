#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <set>
#include <thread>

#include "comm/amqp.hpp"
#include "comm/inproc.hpp"
#include "comm/modeled.hpp"
#include "comm/star.hpp"
#include "comm/tcp.hpp"
#include "net_util.hpp"

namespace {

using of::comm::Communicator;
using of::comm::InProcGroup;
using of::comm::ReduceOp;
using of::comm::TcpCommunicator;
using of::tensor::Bytes;
using of::tensor::Rng;
using of::tensor::Tensor;

// Run `fn(rank, comm)` on one thread per rank of an in-proc group.
void run_group(int world, const std::function<void(int, Communicator&)>& fn) {
  InProcGroup group(world);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, group.comm(r));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(InProc, PointToPoint) {
  run_group(2, [](int rank, Communicator& c) {
    if (rank == 0) {
      c.send_bytes(1, 5, Bytes{1, 2, 3});
      const Bytes back = c.recv_bytes(1, 6);
      EXPECT_EQ(back, (Bytes{9}));
    } else {
      EXPECT_EQ(c.recv_bytes(0, 5), (Bytes{1, 2, 3}));
      c.send_bytes(0, 6, Bytes{9});
    }
  });
}

TEST(InProc, TagsKeepStreamsSeparate) {
  run_group(2, [](int rank, Communicator& c) {
    if (rank == 0) {
      c.send_bytes(1, 1, Bytes{1});
      c.send_bytes(1, 2, Bytes{2});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(c.recv_bytes(0, 2), (Bytes{2}));
      EXPECT_EQ(c.recv_bytes(0, 1), (Bytes{1}));
    }
  });
}

TEST(InProc, FifoWithinTag) {
  run_group(2, [](int rank, Communicator& c) {
    if (rank == 0) {
      for (std::uint8_t i = 0; i < 10; ++i) c.send_bytes(1, 3, Bytes{i});
    } else {
      for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(c.recv_bytes(0, 3), Bytes{i});
    }
  });
}

TEST(InProc, SelfSendThrows) {
  InProcGroup group(2);
  EXPECT_THROW(group.comm(0).send_bytes(0, 1, Bytes{}), std::runtime_error);
  EXPECT_THROW(group.comm(0).send_bytes(7, 1, Bytes{}), std::runtime_error);
}

TEST(InProc, RecvTimeoutGivesReadableError) {
  InProcGroup group(2);
  group.comm(0).set_recv_timeout(0.05);
  try {
    (void)group.comm(0).recv_bytes(1, 42);
    FAIL() << "expected timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
  }
}

class CollectiveWorldSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWorldSweep, BroadcastFromEveryRoot) {
  const int world = GetParam();
  for (int root = 0; root < world; ++root) {
    run_group(world, [&](int rank, Communicator& c) {
      Tensor t({5});
      if (rank == root)
        for (std::size_t i = 0; i < 5; ++i) t[i] = static_cast<float>(i + root);
      c.broadcast(t, root);
      for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], static_cast<float>(i + root));
    });
  }
}

TEST_P(CollectiveWorldSweep, AllreduceSumMatchesSequential) {
  const int world = GetParam();
  // Deliberately awkward length (not divisible by world) to exercise ring
  // chunk boundaries.
  const std::size_t n = 13;
  std::vector<Tensor> inputs;
  Rng rng(static_cast<std::uint64_t>(world));
  Tensor expected({n});
  for (int r = 0; r < world; ++r) {
    inputs.push_back(Tensor::randn({n}, rng));
    expected.add_(inputs.back());
  }
  run_group(world, [&](int rank, Communicator& c) {
    Tensor t = inputs[static_cast<std::size_t>(rank)];
    c.allreduce(t, ReduceOp::Sum);
    EXPECT_TRUE(t.allclose(expected, 1e-4f, 1e-4f)) << "rank " << rank;
  });
}

TEST_P(CollectiveWorldSweep, AllreduceMean) {
  const int world = GetParam();
  run_group(world, [&](int rank, Communicator& c) {
    Tensor t = Tensor::full({7}, static_cast<float>(rank));
    c.allreduce(t, ReduceOp::Mean);
    const float expect = static_cast<float>(world - 1) / 2.0f;
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(t[i], expect, 1e-5f);
  });
}

TEST_P(CollectiveWorldSweep, AllreduceMax) {
  const int world = GetParam();
  run_group(world, [&](int rank, Communicator& c) {
    Tensor t = Tensor::full({4}, static_cast<float>(rank == 1 ? 100 : rank));
    c.allreduce(t, ReduceOp::Max);
    const float expect = world > 1 ? 100.0f : 0.0f;
    EXPECT_FLOAT_EQ(t[0], expect);
  });
}

TEST_P(CollectiveWorldSweep, ReduceToEveryRoot) {
  const int world = GetParam();
  for (int root = 0; root < world; ++root) {
    run_group(world, [&](int rank, Communicator& c) {
      Tensor t = Tensor::full({3}, 1.0f);
      c.reduce(t, root, ReduceOp::Sum);
      if (rank == root)
        EXPECT_FLOAT_EQ(t[0], static_cast<float>(world));
    });
  }
}

TEST_P(CollectiveWorldSweep, GatherCollectsInRankOrder) {
  const int world = GetParam();
  run_group(world, [&](int rank, Communicator& c) {
    const Tensor mine = Tensor::full({2}, static_cast<float>(rank));
    const auto all = c.gather(mine, 0);
    if (rank == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(world));
      for (int p = 0; p < world; ++p)
        EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(p)][0], static_cast<float>(p));
    }
  });
}

TEST_P(CollectiveWorldSweep, AllgatherEveryoneSeesEverything) {
  const int world = GetParam();
  run_group(world, [&](int rank, Communicator& c) {
    const Tensor mine = Tensor::full({3}, static_cast<float>(rank * 10));
    const auto all = c.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(world));
    for (int p = 0; p < world; ++p)
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(p)][0], static_cast<float>(p * 10));
  });
}

TEST_P(CollectiveWorldSweep, AllgatherBytesVariableLength) {
  const int world = GetParam();
  run_group(world, [&](int rank, Communicator& c) {
    Bytes mine(static_cast<std::size_t>(rank + 1), static_cast<std::uint8_t>(rank));
    const auto all = c.allgather_bytes(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(world));
    for (int p = 0; p < world; ++p) {
      EXPECT_EQ(all[static_cast<std::size_t>(p)].size(), static_cast<std::size_t>(p + 1));
      if (p + 1 > 0) EXPECT_EQ(all[static_cast<std::size_t>(p)][0], p);
    }
  });
}

TEST_P(CollectiveWorldSweep, BarrierCompletes) {
  const int world = GetParam();
  run_group(world, [&](int, Communicator& c) { c.barrier(); });
}

INSTANTIATE_TEST_SUITE_P(Worlds, CollectiveWorldSweep, ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(InProc, AllreduceShorterThanWorld) {
  // numel < world leaves some ring chunks empty; result must still be exact.
  run_group(6, [&](int rank, Communicator& c) {
    Tensor t = Tensor::full({2}, static_cast<float>(rank));
    c.allreduce(t, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(t[0], 15.0f);
  });
}

TEST(InProc, StatsCountBytes) {
  run_group(2, [](int rank, Communicator& c) {
    if (rank == 0) c.send_bytes(1, 1, Bytes{1, 2, 3, 4});
    else (void)c.recv_bytes(0, 1);
    if (rank == 0) {
      EXPECT_EQ(c.stats().bytes_sent, 4u);
      EXPECT_EQ(c.stats().messages_sent, 1u);
    } else {
      EXPECT_EQ(c.stats().bytes_received, 4u);
    }
  });
}

// --- TCP ---------------------------------------------------------------------------

void run_tcp(int world, std::uint16_t port,
             const std::function<void(int, Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        std::unique_ptr<TcpCommunicator> c;
        if (r == 0) c = TcpCommunicator::make_server(port, world);
        else c = TcpCommunicator::make_client("127.0.0.1", port, r, world);
        fn(r, *c);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(Tcp, PointToPointBothWays) {
  run_tcp(3, of::testutil::ephemeral_port(), [](int rank, Communicator& c) {
    if (rank == 0) {
      for (int p = 1; p < 3; ++p)
        c.send_bytes(p, 1, Bytes{static_cast<std::uint8_t>(p)});
      EXPECT_EQ(c.recv_bytes(1, 2), (Bytes{11}));
      EXPECT_EQ(c.recv_bytes(2, 2), (Bytes{22}));
    } else {
      EXPECT_EQ(c.recv_bytes(0, 1), Bytes{static_cast<std::uint8_t>(rank)});
      c.send_bytes(0, 2, Bytes{static_cast<std::uint8_t>(rank * 11)});
    }
  });
}

TEST(Tcp, ClientToClientThrows) {
  run_tcp(3, of::testutil::ephemeral_port(), [](int rank, Communicator& c) {
    if (rank == 1) EXPECT_THROW(c.send_bytes(2, 1, Bytes{1}), std::runtime_error);
    c.barrier();
  });
}

TEST(Tcp, StarCollectives) {
  run_tcp(4, of::testutil::ephemeral_port(), [](int rank, Communicator& c) {
    // broadcast
    Tensor t = rank == 0 ? Tensor::full({6}, 3.5f) : Tensor({6});
    c.broadcast(t, 0);
    EXPECT_FLOAT_EQ(t[5], 3.5f);
    // reduce
    Tensor r = Tensor::full({2}, 1.0f);
    c.reduce(r, 0, ReduceOp::Sum);
    if (rank == 0) EXPECT_FLOAT_EQ(r[0], 4.0f);
    // allreduce mean
    Tensor a = Tensor::full({3}, static_cast<float>(rank));
    c.allreduce(a, ReduceOp::Mean);
    EXPECT_FLOAT_EQ(a[0], 1.5f);
    // gather / allgather
    const auto all = c.allgather(Tensor::full({1}, static_cast<float>(rank)));
    ASSERT_EQ(all.size(), 4u);
    EXPECT_FLOAT_EQ(all[3][0], 3.0f);
    c.barrier();
  });
}

TEST(Tcp, EphemeralPortDiscovery) {
  // Port 0 → the OS picks; server reports the actual port.
  auto probe = std::thread([] {
    auto server = TcpCommunicator::make_server(0, 1);
    EXPECT_GT(server->port(), 0);
  });
  probe.join();
}

TEST(Tcp, LargePayloadRoundtrip) {
  run_tcp(2, of::testutil::ephemeral_port(), [](int rank, Communicator& c) {
    Rng rng(1);
    if (rank == 0) {
      const Tensor big = Tensor::randn({100000}, rng);
      c.send_tensor(1, 1, big);
      const Tensor back = c.recv_tensor(1, 2);
      EXPECT_TRUE(back.allclose(big, 0.0f, 0.0f));
    } else {
      const Tensor got = c.recv_tensor(0, 1);
      c.send_tensor(0, 2, got);
    }
  });
}

// --- TCP hardening (malformed frames, timeouts, fault tolerance) --------------------

// Mirror of the transport's v2 wire header (u32 magic | i32 src | i32 tag |
// u32 round | u64 len | u64 trace_id | u64 span_id, natural alignment) for
// crafting raw frames against the server. Keep in lockstep with
// src/comm/tcp.cpp FrameHeader.
struct WireHeader {
  std::uint32_t magic = 0;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t round = 0;
  std::uint64_t len = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};
static_assert(sizeof(WireHeader) == 40, "must match the transport header");
constexpr std::uint32_t kWireMagic = 0x0F5EED02u;
constexpr int kWireHelloTag = -1;

int connect_raw(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  for (int attempt = 0; attempt < 250; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

void send_raw(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return;
    sent += static_cast<std::size_t>(w);
  }
}

// Like run_tcp, but with fault tolerance knobs and the concrete communicator
// type (inject_disconnect / reconnect_count are TCP-specific).
void run_tcp_ft(int world, std::uint16_t port, TcpCommunicator::FaultTolerance ft,
                const std::function<void(int, TcpCommunicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        std::unique_ptr<TcpCommunicator> c;
        if (r == 0) c = TcpCommunicator::make_server(port, world, ft);
        else c = TcpCommunicator::make_client("127.0.0.1", port, r, world, ft);
        fn(r, *c);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(TcpHardening, MalformedHelloAbortsSetup) {
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread intruder([port] {
    const int fd = connect_raw(port);
    ASSERT_GE(fd, 0);
    WireHeader h{0xBADF00Du, 1, kWireHelloTag, 0};
    send_raw(fd, &h, sizeof(h));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::close(fd);
  });
  EXPECT_THROW((void)TcpCommunicator::make_server(port, 2), std::runtime_error);
  intruder.join();
}

TEST(TcpHardening, OutOfRangeRankHelloAbortsSetup) {
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread intruder([port] {
    const int fd = connect_raw(port);
    ASSERT_GE(fd, 0);
    WireHeader h{kWireMagic, 7, kWireHelloTag, 0, 0, 0, 0};  // world is 2: ranks 1..1
    send_raw(fd, &h, sizeof(h));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::close(fd);
  });
  EXPECT_THROW((void)TcpCommunicator::make_server(port, 2), std::runtime_error);
  intruder.join();
}

TEST(TcpHardening, OversizedFrameDropsLink) {
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::unique_ptr<TcpCommunicator> server;
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });
  const int fd = connect_raw(port);
  ASSERT_GE(fd, 0);
  WireHeader hello{kWireMagic, 1, kWireHelloTag, 0, 0, 0, 0};
  send_raw(fd, &hello, sizeof(hello));
  srv.join();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->peer_alive(1));
  // A length field past the 1 GiB frame cap must sever the link before any
  // allocation happens, not feed a giant Bytes buffer.
  WireHeader bomb{kWireMagic, 1, 7, 0, (1ull << 30) + 1, 0, 0};
  send_raw(fd, &bomb, sizeof(bomb));
  for (int i = 0; i < 500 && server->peer_alive(1); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(server->peer_alive(1));
  ::close(fd);
}

TEST(TcpHardening, RecvTimeoutMentionsTimeout) {
  run_tcp_ft(2, of::testutil::ephemeral_port(), {}, [](int rank, TcpCommunicator& c) {
    if (rank == 0) {
      c.set_recv_timeout(0.05);
      try {
        (void)c.recv_bytes(1, 99);
        FAIL() << "expected timeout";
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
      }
      c.send_bytes(1, 1, Bytes{1});  // release the silent client
    } else {
      EXPECT_EQ(c.recv_bytes(0, 1), (Bytes{1}));
    }
  });
}

TEST(TcpHardening, ReconnectAfterDropReplaysQueuedFrames) {
  TcpCommunicator::FaultTolerance ft;
  ft.enabled = true;
  ft.max_reconnect_attempts = 50;
  ft.backoff_seconds = 0.01;
  ft.backoff_max_seconds = 0.1;
  run_tcp_ft(2, of::testutil::ephemeral_port(), ft, [](int rank, TcpCommunicator& c) {
    if (rank == 0) {
      EXPECT_EQ(c.recv_bytes(1, 1), (Bytes{1}));
      c.send_bytes(1, 2, Bytes{2});               // ack: frame 1 arrived
      EXPECT_EQ(c.recv_bytes(1, 3), (Bytes{3}));  // replayed over the new link
      c.send_bytes(1, 4, Bytes{4});               // new link works downstream too
      EXPECT_GE(c.stats().reconnects, 1u);        // the rejoin was counted
    } else {
      c.send_bytes(0, 1, Bytes{1});
      EXPECT_EQ(c.recv_bytes(0, 2), (Bytes{2}));
      c.inject_disconnect(0);                     // sever the live link
      c.send_bytes(0, 3, Bytes{3});               // queued while down
      EXPECT_EQ(c.recv_bytes(0, 4), (Bytes{4}));
      EXPECT_GE(c.reconnect_count(), 1u);
    }
  });
}

TEST(TcpHardening, DownLinkWithoutFaultToleranceThrows) {
  run_tcp_ft(2, of::testutil::ephemeral_port(), {}, [](int rank, TcpCommunicator& c) {
    if (rank == 0) {
      EXPECT_EQ(c.recv_bytes(1, 1), (Bytes{9}));
    } else {
      c.send_bytes(0, 1, Bytes{9});
      c.inject_disconnect(0);
      for (int i = 0; i < 500 && c.peer_alive(0); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      EXPECT_FALSE(c.peer_alive(0));
      EXPECT_THROW(c.send_bytes(0, 2, Bytes{1}), std::runtime_error);
    }
  });
}

// --- Accept-path regressions (event-loop server, ports 474xx) -----------------------

TEST(TcpAcceptPath, ListenBacklogSurvivesConnectBurst) {
  // A mass-connect burst larger than the old `backlog = world_size` must not
  // shed SYNs: every handshake has to complete promptly even before the
  // accept loop gets scheduled. With backlog 2 the kernel drops the overflow
  // and those connects stall on the ~1 s SYN retransmit, blowing the budget.
  constexpr int kBurst = 128;
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::unique_ptr<TcpCommunicator> server;
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });

  // Wait until the listener is up, keeping this fd to hello later.
  const int hello_fd = connect_raw(port);
  ASSERT_GE(hello_fd, 0);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::vector<int> fds;
  for (int i = 0; i < kBurst; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ASSERT_TRUE(rc == 0 || errno == EINPROGRESS);
    fds.push_back(fd);
  }
  // Every connect must finish the three-way handshake within the budget —
  // well under the kernel's 1 s SYN retransmission timer.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(800);
  int connected = 0;
  for (const int fd : fds) {
    pollfd pf{fd, POLLOUT, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now()).count();
    if (::poll(&pf, 1, static_cast<int>(std::max<long long>(left, 0))) == 1) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err == 0) ++connected;
    }
  }
  EXPECT_EQ(connected, kBurst);

  // Complete formation so make_server returns; burst fds close quietly.
  WireHeader hello{kWireMagic, 1, kWireHelloTag, 0, 0, 0, 0};
  send_raw(hello_fd, &hello, sizeof(hello));
  srv.join();
  ASSERT_NE(server, nullptr);
  for (const int fd : fds) ::close(fd);
  ::close(hello_fd);
}

TEST(TcpAcceptPath, SlowScraperDoesNotWedgeAdmission) {
  // A scraper that sends "GET " and then stalls must not block client
  // admission: HTTP conns are served off the event loop under their own
  // deadline. The old inline-on-accept path sat in a 10 s recv timeout
  // before accepting the next connection.
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::unique_ptr<TcpCommunicator> server;
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });

  const int scraper = connect_raw(port);
  ASSERT_GE(scraper, 0);
  send_raw(scraper, "GET ", 4);  // sniffable as HTTP, then silence

  // Give the server time to take the scraper before the real client shows up.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  auto client = TcpCommunicator::make_client("127.0.0.1", port, 1, 2);
  srv.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->peer_alive(1));
  EXPECT_LT(secs, 5.0) << "stalled scraper wedged admission";
  ::close(scraper);
}

TEST(TcpAcceptPath, ConnectTimeoutSurfacesCleanError) {
  // No server on this port: the connect retry loop must give up at the
  // configured budget with an actionable error, not spin forever at 20 ms.
  TcpCommunicator::FaultTolerance ft;
  ft.connect_timeout_seconds = 0.3;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)TcpCommunicator::make_client("127.0.0.1", of::testutil::ephemeral_port(), 1, 2, ft);
    FAIL() << "expected connect failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("connect()"), std::string::npos) << what;
    EXPECT_NE(what.find("coordinator"), std::string::npos) << what;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(secs, 2.0) << "retry loop overran its budget";
}

// --- AMQP (pub/sub middleware) -------------------------------------------------------

void run_amqp(int world, const std::function<void(int, Communicator&)>& fn) {
  of::comm::AmqpGroup group(world);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, group.comm(r));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(Amqp, PublishSubscribeP2P) {
  run_amqp(2, [](int rank, Communicator& c) {
    if (rank == 0) {
      c.send_bytes(1, 3, Bytes{7, 8});
      EXPECT_EQ(c.recv_bytes(1, 4), (Bytes{9}));
    } else {
      EXPECT_EQ(c.recv_bytes(0, 3), (Bytes{7, 8}));
      c.send_bytes(0, 4, Bytes{9});
    }
  });
}

TEST(Amqp, DemultiplexesTagsAndSources) {
  run_amqp(3, [](int rank, Communicator& c) {
    if (rank == 0) {
      // Wait for tag 2 first even though tag 1 frames arrive interleaved.
      EXPECT_EQ(c.recv_bytes(2, 2), (Bytes{22}));
      EXPECT_EQ(c.recv_bytes(1, 1), (Bytes{11}));
      EXPECT_EQ(c.recv_bytes(1, 2), (Bytes{12}));
    } else if (rank == 1) {
      c.send_bytes(0, 1, Bytes{11});
      c.send_bytes(0, 2, Bytes{12});
    } else {
      c.send_bytes(0, 2, Bytes{22});
    }
  });
}

TEST(Amqp, CollectivesWorkOverQueues) {
  run_amqp(4, [](int rank, Communicator& c) {
    Tensor t = Tensor::full({9}, static_cast<float>(rank + 1));
    c.allreduce(t, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(t[0], 10.0f);
    Tensor b = rank == 2 ? Tensor::full({3}, 5.0f) : Tensor({3});
    c.broadcast(b, 2);
    EXPECT_FLOAT_EQ(b[1], 5.0f);
    c.barrier();
  });
}

TEST(Amqp, QueueBackedFifoPerSender) {
  run_amqp(2, [](int rank, Communicator& c) {
    if (rank == 0) {
      for (std::uint8_t i = 0; i < 16; ++i) c.send_bytes(1, 9, Bytes{i});
    } else {
      for (std::uint8_t i = 0; i < 16; ++i) EXPECT_EQ(c.recv_bytes(0, 9), Bytes{i});
    }
  });
}

TEST(Amqp, RecvTimeoutThrows) {
  of::comm::AmqpGroup group(2);
  group.comm(0).set_recv_timeout(0.05);
  EXPECT_THROW((void)group.comm(0).recv_bytes(1, 1), std::runtime_error);
}

// --- any-source receive ---------------------------------------------------------------

TEST(RecvAny, InProcDeliversFromWhoeverIsFirst) {
  run_group(4, [](int rank, Communicator& c) {
    if (rank == 0) {
      std::set<int> seen;
      for (int i = 0; i < 3; ++i) {
        auto [src, b] = c.recv_bytes_any(7);
        EXPECT_EQ(b, Bytes{static_cast<std::uint8_t>(src)});
        seen.insert(src);
      }
      EXPECT_EQ(seen.size(), 3u);
    } else {
      c.send_bytes(0, 7, Bytes{static_cast<std::uint8_t>(rank)});
    }
  });
}

TEST(RecvAny, FiltersByTag) {
  run_group(2, [](int rank, Communicator& c) {
    if (rank == 0) {
      auto [src, b] = c.recv_bytes_any(2);
      EXPECT_EQ(b, Bytes{22});
      EXPECT_EQ(src, 1);
      EXPECT_EQ(c.recv_bytes(1, 1), Bytes{11});
    } else {
      c.send_bytes(0, 1, Bytes{11});
      c.send_bytes(0, 2, Bytes{22});
    }
  });
}

TEST(RecvAny, AmqpQueueOrder) {
  run_amqp(3, [](int rank, Communicator& c) {
    if (rank == 0) {
      for (int i = 0; i < 2; ++i) (void)c.recv_bytes_any(5);
    } else {
      c.send_bytes(0, 5, Bytes{1});
    }
  });
}

TEST(RecvAny, TcpServerSide) {
  run_tcp(3, of::testutil::ephemeral_port(), [](int rank, Communicator& c) {
    if (rank == 0) {
      std::set<int> seen;
      for (int i = 0; i < 2; ++i) {
        auto [src, b] = c.recv_bytes_any(9);
        seen.insert(src);
      }
      EXPECT_EQ(seen.size(), 2u);
    } else {
      c.send_bytes(0, 9, Bytes{static_cast<std::uint8_t>(rank)});
    }
  });
}

TEST(RecvAny, TimesOut) {
  InProcGroup group(2);
  group.comm(0).set_recv_timeout(0.05);
  EXPECT_THROW((void)group.comm(0).recv_bytes_any(1), std::runtime_error);
}

// --- modeled links -----------------------------------------------------------------

TEST(ModeledLink, VirtualModeAccountsDelayWithoutSleeping) {
  run_group(2, [](int rank, Communicator& base) {
    of::comm::LinkModel model{0.010, 1000.0};  // 10 ms + 1 KB/s
    of::comm::ModeledLinkCommunicator c(base, model, of::comm::DelayMode::Virtual);
    const auto t0 = std::chrono::steady_clock::now();
    if (rank == 0) c.send_bytes(1, 1, Bytes(500, 0));
    else (void)c.recv_bytes(0, 1);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (rank == 0) {
      // 10 ms latency + 500 B / 1000 B/s = 0.51 s modeled, ~0 s wall.
      EXPECT_NEAR(c.modeled_delay_seconds(), 0.51, 1e-6);
      EXPECT_LT(wall, 0.2);
    }
  });
}

TEST(ModeledLink, SleepModeActuallyDelays) {
  run_group(2, [](int rank, Communicator& base) {
    of::comm::LinkModel model{0.030, 0.0};
    of::comm::ModeledLinkCommunicator c(base, model, of::comm::DelayMode::Sleep);
    const auto t0 = std::chrono::steady_clock::now();
    if (rank == 0) c.send_bytes(1, 1, Bytes{1});
    else (void)c.recv_bytes(0, 1);
    if (rank == 0) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      EXPECT_GE(wall, 0.025);
    }
  });
}

TEST(ModeledLink, CollectivesStillCorrect) {
  run_group(3, [](int rank, Communicator& base) {
    of::comm::ModeledLinkCommunicator c(base, of::comm::LinkModel::lan(),
                                        of::comm::DelayMode::Virtual);
    Tensor t = Tensor::full({5}, static_cast<float>(rank + 1));
    c.allreduce(t, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(t[0], 6.0f);
  });
}

TEST(ModeledLink, TransferTimeFormula) {
  of::comm::LinkModel wan = of::comm::LinkModel::wan();
  // 20 ms + bytes / (100 Mb/s).
  EXPECT_NEAR(wan.transfer_seconds(0), 0.020, 1e-9);
  EXPECT_NEAR(wan.transfer_seconds(12'500'000), 0.020 + 1.0, 1e-6);
  EXPECT_GT(wan.transfer_seconds(1000), of::comm::LinkModel::lan().transfer_seconds(1000));
}

// --- collective tag-window aliasing (regression) ------------------------------
//
// The collective tag used to be base + 16·(seq % window): once the sequence
// wrapped the window, collective N and N+window shared a tag, so a frame a
// slow peer left queued from an old collective could satisfy a new
// collective's recv. The epoch byte folded into the tag disambiguates
// adjacent wraps. The test shrinks the window to 2 so the wrap happens on
// the third claim.

TEST(CollectiveTags, EpochByteDisambiguatesWindowWrap) {
  InProcGroup group(2);
  auto& c0 = group.comm(0);
  auto& c1 = group.comm(1);
  c0.set_collective_tag_window_for_test(2);
  c1.set_collective_tag_window_for_test(2);

  // Both ranks claim tags in the same order — the collectives contract.
  const int t0_r0 = c0.claim_collective_tag();
  const int t0_r1 = c1.claim_collective_tag();
  ASSERT_EQ(t0_r0, t0_r1);
  // A stale frame from the seq-0 collective is left sitting in the queue
  // (e.g. a peer that fell behind and still pushed its contribution).
  c1.send_bytes(0, t0_r1, Bytes{0xAA});

  (void)c0.claim_collective_tag();  // seq 1
  (void)c1.claim_collective_tag();
  const int t2_r0 = c0.claim_collective_tag();  // seq 2: slot wraps to 0
  const int t2_r1 = c1.claim_collective_tag();
  ASSERT_EQ(t2_r0, t2_r1);

  // The wrapped tag must not alias the seq-0 tag — that is the bug.
  EXPECT_NE(t2_r0, t0_r0);

  // The seq-2 collective's recv gets the fresh frame, not the stale one.
  c1.send_bytes(0, t2_r1, Bytes{0xBB});
  EXPECT_EQ(c0.recv_bytes(1, t2_r0), (Bytes{0xBB}));
  // The stale frame is still addressable under its own (old-epoch) tag.
  EXPECT_EQ(c0.recv_bytes(1, t0_r0), (Bytes{0xAA}));
}

TEST(ConnectBackoffTest, IdenticalSeedsReplayTheIdenticalSchedule) {
  // The connect-retry chain is pure in its seed: a rerun with the same run
  // seed paces its connect storm identically, which is what makes transport
  // flakes reproducible. Different seeds must decorrelate (that is the
  // whole point of jitter).
  const auto a = of::comm::connect_backoff_schedule(0xDEC0DEULL, 12);
  const auto b = of::comm::connect_backoff_schedule(0xDEC0DEULL, 12);
  const auto c = of::comm::connect_backoff_schedule(0xDEC0DFULL, 12);
  ASSERT_EQ(a.size(), 12u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  // The schedule is exponential-with-jitter under a hard cap: every delay
  // sits in [0.5, 1.5)× the nominal doubling delay, itself capped at 0.5 s.
  double nominal = 0.02;
  for (const double d : a) {
    EXPECT_GE(d, 0.5 * nominal);
    EXPECT_LT(d, 1.5 * nominal);
    nominal = std::min(nominal * 2.0, 0.5);
  }
  // Late attempts must have saturated at the cap's jitter band.
  EXPECT_GE(a.back(), 0.25);
  EXPECT_LT(a.back(), 0.75);

  // The incremental ConnectBackoff object is the same chain.
  of::comm::ConnectBackoff cb(0xDEC0DEULL);
  for (const double d : a) EXPECT_DOUBLE_EQ(cb.next(), d);
}

TEST(CollectiveTags, TagsStayInReservedNamespace) {
  InProcGroup group(1);
  auto& c = group.comm(0);
  c.set_collective_tag_window_for_test(4);
  // Cover several epochs: tags must stay at or above the collective base so
  // they can never collide with user tags in [0, 2^20).
  for (int i = 0; i < 4 * 300; ++i)
    EXPECT_GE(c.claim_collective_tag(), 1 << 20);
}

}  // namespace
