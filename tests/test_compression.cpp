#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>

#include "common/nonfinite.hpp"
#include "compression/compressor.hpp"
#include "compression/powersgd.hpp"
#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"
#include "config/yaml.hpp"

namespace {

using of::compression::Compressed;
using of::compression::Compressor;
using of::tensor::Rng;
using of::tensor::Tensor;

std::size_t nnz(const Tensor& t) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (t[i] != 0.0f) ++n;
  return n;
}

TEST(TopK, KeepsExactlyKLargest) {
  of::compression::TopK codec(/*k=*/3, /*is_factor=*/false);
  const Tensor t = Tensor::from_vector({0.1f, -5.0f, 0.2f, 4.0f, -0.3f, 3.0f});
  const Tensor out = codec.decompress(codec.compress(t));
  EXPECT_EQ(nnz(out), 3u);
  EXPECT_FLOAT_EQ(out[1], -5.0f);
  EXPECT_FLOAT_EQ(out[3], 4.0f);
  EXPECT_FLOAT_EQ(out[5], 3.0f);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
}

TEST(TopK, FactorFormMatchesPaperSpelling) {
  // "k: 1000x" → keep numel/1000 coordinates.
  of::compression::TopK codec(/*factor=*/10.0, /*is_factor=*/true);
  Rng rng(1);
  const Tensor t = Tensor::randn({1000}, rng);
  const auto c = codec.compress(t);
  const Tensor out = codec.decompress(c);
  EXPECT_EQ(nnz(out), 100u);
  EXPECT_GT(c.achieved_ratio(), 4.0);  // ~10x data, minus index overhead
}

TEST(TopK, PreservedValuesAreExact) {
  of::compression::TopK codec(5, false);
  Rng rng(2);
  const Tensor t = Tensor::randn({64}, rng);
  const Tensor out = codec.decompress(codec.compress(t));
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (out[i] != 0.0f) EXPECT_FLOAT_EQ(out[i], t[i]);
}

TEST(RandomK, UnbiasedInExpectation) {
  of::compression::RandomK codec(/*factor=*/4.0, true, 7);
  const Tensor t = Tensor::full({64}, 2.0f);
  Tensor acc({64});
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) acc.add_(codec.decompress(codec.compress(t)));
  acc.scale_(1.0f / trials);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(acc[i], 2.0f, 0.35f);
}

TEST(RandomK, SelectsDistinctIndices) {
  of::compression::RandomK codec(16, false, 3);
  Rng rng(3);
  const Tensor t = Tensor::randn({32}, rng);
  const auto c = codec.compress(t);
  std::vector<std::uint32_t> idx;
  std::vector<float> val;
  of::compression::sparse_decode(
      of::tensor::Bytes(c.payload.begin(), c.payload.end()), idx, val);
  std::set<std::uint32_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), idx.size());
  EXPECT_EQ(idx.size(), 16u);
}

class SparsifierSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {
 protected:
  std::unique_ptr<Compressor> make(const std::string& name, double factor) {
    using namespace of::compression;
    if (name == "TopK") return std::make_unique<TopK>(factor, true);
    if (name == "DGC") return std::make_unique<DGC>(factor, true, 11);
    if (name == "RedSync") return std::make_unique<RedSync>(factor, true);
    if (name == "SIDCo") return std::make_unique<SIDCo>(factor, true);
    if (name == "RandomK") return std::make_unique<RandomK>(factor, true, 11);
    return nullptr;
  }
};

TEST_P(SparsifierSweep, SparsityNearTarget) {
  const auto [name, factor] = GetParam();
  auto codec = make(name, factor);
  Rng rng(5);
  const Tensor t = Tensor::randn({20000}, rng);
  const Tensor out = codec->decompress(codec->compress(t));
  const double target = 20000.0 / factor;
  const double got = static_cast<double>(nnz(out));
  // Threshold-estimating codecs (DGC/RedSync/SIDCo) land within a band.
  EXPECT_GT(got, target * 0.3) << name;
  EXPECT_LT(got, target * 3.0) << name;
}

TEST_P(SparsifierSweep, SurvivingValuesComeFromInput) {
  const auto [name, factor] = GetParam();
  if (name == "RandomK") return;  // RandomK rescales by n/k by design
  auto codec = make(name, factor);
  Rng rng(6);
  const Tensor t = Tensor::randn({5000}, rng);
  const Tensor out = codec->decompress(codec->compress(t));
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (out[i] != 0.0f) EXPECT_FLOAT_EQ(out[i], t[i]) << name;
}

TEST_P(SparsifierSweep, CompressionReducesBytes) {
  const auto [name, factor] = GetParam();
  auto codec = make(name, factor);
  Rng rng(7);
  const Tensor t = Tensor::randn({20000}, rng);
  const auto c = codec->compress(t);
  EXPECT_LT(c.bytes(), 20000 * sizeof(float) / 2) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, SparsifierSweep,
    ::testing::Combine(::testing::Values("TopK", "DGC", "RedSync", "SIDCo", "RandomK"),
                       ::testing::Values(10.0, 100.0, 1000.0)));

TEST(QSGD, UnbiasedQuantization) {
  of::compression::QSGD codec(8, 13);
  Rng rng(8);
  const Tensor t = Tensor::randn({128}, rng);
  Tensor acc({128});
  const int trials = 3000;
  // QSGD's stochastic rounding is counter-seeded per (round, client, bucket),
  // so fresh randomness needs a fresh stream — advance the round each trial.
  for (int i = 0; i < trials; ++i) {
    codec.set_stream(static_cast<std::uint64_t>(i), 0);
    acc.add_(codec.decompress(codec.compress(t)));
  }
  acc.scale_(1.0f / trials);
  const float scale = t.l2_norm() / 127.0f;  // one quantization level
  for (std::size_t i = 0; i < t.numel(); ++i)
    EXPECT_NEAR(acc[i], t[i], 3.0f * scale / std::sqrt(static_cast<float>(trials)) * 30)
        << i;
}

TEST(QSGD, CompressionFactorsMatchPaper) {
  Rng rng(9);
  const Tensor t = Tensor::randn({10000}, rng);
  of::compression::QSGD q8(8, 1), q16(16, 1);
  // Paper: 8-bit ≈ 4×, 16-bit ≈ 2× versus float32.
  EXPECT_NEAR(q8.compress(t).achieved_ratio(), 4.0, 0.05);
  EXPECT_NEAR(q16.compress(t).achieved_ratio(), 2.0, 0.05);
}

TEST(QSGD, QuantizationErrorBounded) {
  of::compression::QSGD codec(16, 2);
  Rng rng(10);
  const Tensor t = Tensor::randn({256}, rng);
  const Tensor out = codec.decompress(codec.compress(t));
  const float level = t.l2_norm() / 32767.0f;
  for (std::size_t i = 0; i < t.numel(); ++i)
    EXPECT_LE(std::fabs(out[i] - t[i]), level * 1.001f);
}

TEST(QSGD, ZeroTensorRoundtrip) {
  of::compression::QSGD codec(8, 3);
  const Tensor t({100});
  const Tensor out = codec.decompress(codec.compress(t));
  EXPECT_FLOAT_EQ(out.l2_norm(), 0.0f);
}

TEST(QSGD, SignsPreserved) {
  of::compression::QSGD codec(8, 4);
  const Tensor t = Tensor::from_vector({10.0f, -10.0f, 10.0f, -10.0f});
  const Tensor out = codec.decompress(codec.compress(t));
  EXPECT_GT(out[0], 0.0f);
  EXPECT_LT(out[1], 0.0f);
}

TEST(QSGD, RejectsOddBitWidths) {
  EXPECT_THROW(of::compression::QSGD(12, 1), std::runtime_error);
}

TEST(QSGD, CompressTwiceSameStreamIsIdentical) {
  // Stochastic rounding is seeded per (round, client, bucket) rather than
  // from a mutating generator: re-encoding the same tensor in the same
  // stream must produce byte-identical payloads (retries, ring re-sends).
  of::compression::QSGD codec(8, 13);
  Rng rng(21);
  const Tensor t = Tensor::randn({10000}, rng);
  codec.set_stream(/*round=*/5, /*client=*/2);
  const auto first = codec.compress(t);
  codec.set_stream(5, 2);
  const auto second = codec.compress(t);
  ASSERT_EQ(first.payload.size(), second.payload.size());
  EXPECT_EQ(first.payload, second.payload);

  // ...and distinct streams decorrelate: a different round or client must
  // flip at least one rounding decision on a 10k-element tensor.
  codec.set_stream(6, 2);
  const auto other_round = codec.compress(t);
  EXPECT_NE(first.payload, other_round.payload);
  codec.set_stream(5, 3);
  const auto other_client = codec.compress(t);
  EXPECT_NE(first.payload, other_client.payload);
}

TEST(QSGD, StreamsMatchAcrossCodecInstances) {
  // Two codecs with the same construction seed and stream coordinates agree —
  // determinism cannot depend on per-instance hidden state.
  of::compression::QSGD a(8, 7), b(8, 7);
  Rng rng(22);
  const Tensor t = Tensor::randn({4096}, rng);
  a.set_stream(3, 1);
  b.set_stream(3, 1);
  EXPECT_EQ(a.compress(t).payload, b.compress(t).payload);
}

TEST(PowerSGD, RankConstrainsPayloadSize) {
  of::compression::PowerSGD r4(4, 1);
  Rng rng(11);
  const Tensor t = Tensor::randn({10000}, rng);
  const auto c = r4.compress(t);
  // (rows + cols) * r * 4 bytes + header ≈ (100+100)*4*4 = 3.2 KB ≪ 40 KB.
  EXPECT_LT(c.bytes(), 5000u);
  EXPECT_GT(c.achieved_ratio(), 8.0);
}

TEST(PowerSGD, ReconstructsLowRankSignalsWell) {
  // A rank-1 "gradient" should be captured almost exactly.
  Rng rng(12);
  const Tensor u = Tensor::randn({100}, rng);
  const Tensor v = Tensor::randn({100}, rng);
  Tensor t({10000});
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 100; ++j) t[i * 100 + j] = u[i] * v[j];
  of::compression::PowerSGD codec(2, 13);
  // Warm-started power iteration: a few rounds to converge the subspace.
  Tensor out;
  for (int round = 0; round < 4; ++round) out = codec.decompress(codec.compress(t));
  Tensor err = out - t;
  EXPECT_LT(err.l2_norm() / t.l2_norm(), 0.05f);
}

TEST(PowerSGD, HigherRankIsMoreAccurate) {
  Rng rng(14);
  const Tensor t = Tensor::randn({4096}, rng);
  auto rel_err = [&](std::size_t rank) {
    of::compression::PowerSGD codec(rank, 15);
    Tensor out;
    for (int i = 0; i < 3; ++i) out = codec.decompress(codec.compress(t));
    return (out - t).l2_norm() / t.l2_norm();
  };
  EXPECT_LT(rel_err(32), rel_err(4));
}

TEST(ErrorFeedback, ResidualIsWhatTheCodecDropped) {
  auto inner = std::make_unique<of::compression::TopK>(2.0, true);
  of::compression::ErrorFeedbackCompressor ef(std::move(inner));
  Rng rng(16);
  const Tensor t = Tensor::randn({64}, rng);
  const Tensor out = ef.decompress(ef.compress(t));
  Tensor expected_residual = t - out;
  EXPECT_TRUE(ef.residual().allclose(expected_residual, 1e-5f, 1e-5f));
}

TEST(ErrorFeedback, CompressedSgdConvergesOnQuadratic) {
  // minimize ‖w − target‖² with 10×-compressed gradients; EF makes the
  // iterates converge anyway (Karimireddy et al. 2019).
  Rng rng(17);
  const Tensor target = Tensor::randn({100}, rng);
  Tensor w({100});
  auto inner = std::make_unique<of::compression::TopK>(10.0, true);
  of::compression::ErrorFeedbackCompressor ef(std::move(inner));
  // The LR must absorb residual bursts: coordinates outside the top-k
  // accumulate ~compression-factor rounds of gradient before release, so
  // the stable step size shrinks by roughly that factor.
  for (int step = 0; step < 1500; ++step) {
    Tensor grad = w - target;
    const Tensor applied = ef.decompress(ef.compress(grad));
    w.add_scaled_(applied, -0.05f);
  }
  EXPECT_LT((w - target).l2_norm() / target.l2_norm(), 0.05f);
}

TEST(ErrorFeedback, WithoutEfTopKSgdStalls) {
  // Control for the previous test: same setup, no residual accumulation,
  // coordinates outside the top-k never move.
  Rng rng(17);
  Tensor target = Tensor::randn({100}, rng);
  target.abs_();          // all positive...
  target.add_scalar_(1.0f);
  target[7] = 100.0f;     // ...one dominant coordinate hogs the top-k
  Tensor w({100});
  of::compression::TopK codec(/*k=*/1, false);
  for (int step = 0; step < 50; ++step) {
    Tensor grad = w - target;
    const Tensor applied = codec.decompress(codec.compress(grad));
    w.add_scaled_(applied, -0.3f);
  }
  // At most 50 coordinates can have been selected; most never moved.
  std::size_t untouched = 0;
  for (std::size_t i = 0; i < 100; ++i)
    if (w[i] == 0.0f) ++untouched;
  EXPECT_GE(untouched, 50u);
}

TEST(Identity, ExactRoundtrip) {
  of::compression::Identity codec;
  Rng rng(18);
  const Tensor t = Tensor::randn({37}, rng);
  EXPECT_TRUE(codec.decompress(codec.compress(t)).allclose(t, 0.0f, 0.0f));
  EXPECT_TRUE(codec.allreduce_compatible());
}

// --- allreduce compatibility flags (paper §3.4.2) -------------------------------

TEST(Compatibility, SparsifiersNeedAllgatherDenseCodecsAllreduce) {
  EXPECT_FALSE(of::compression::TopK(10, true).allreduce_compatible());
  EXPECT_FALSE(of::compression::DGC(10, true, 1).allreduce_compatible());
  EXPECT_TRUE(of::compression::QSGD(8, 1).allreduce_compatible());
  EXPECT_TRUE(of::compression::PowerSGD(8, 1).allreduce_compatible());
}

// --- config factory ---------------------------------------------------------------

TEST(Factory, PaperStyleTopKConfig) {
  const auto cfg = of::config::parse_yaml(R"(
_target_: src.omnifed.communicator.compression.TopK
k: 1000x
)");
  auto codec = of::compression::make_compressor(cfg);
  EXPECT_EQ(codec->name(), "TopK");
  Rng rng(19);
  const Tensor t = Tensor::randn({10000}, rng);
  EXPECT_EQ(nnz(codec->decompress(codec->compress(t))), 10u);
}

TEST(Factory, AbsoluteKAndFactorForms) {
  auto abs_cfg = of::config::parse_yaml("_target_: TopK\nk: 25\n");
  auto codec = of::compression::make_compressor(abs_cfg);
  Rng rng(20);
  const Tensor t = Tensor::randn({1000}, rng);
  EXPECT_EQ(nnz(codec->decompress(codec->compress(t))), 25u);

  auto fac_cfg = of::config::parse_yaml("_target_: TopK\nfactor: 50\n");
  auto codec2 = of::compression::make_compressor(fac_cfg);
  EXPECT_EQ(nnz(codec2->decompress(codec2->compress(t))), 20u);
}

TEST(Factory, ErrorFeedbackFlagWraps) {
  auto cfg = of::config::parse_yaml("_target_: TopK\nk: 10\nerror_feedback: true\n");
  auto codec = of::compression::make_compressor(cfg);
  EXPECT_EQ(codec->name(), "EF(TopK)");
}

TEST(Factory, AllRegisteredCodecsConstruct) {
  for (const auto& name : of::compression::compressor_registry().names()) {
    // One kitchen-sink config for every codec: each target reads its own
    // knobs, so this only parses with the strict unknown-key gate off.
    auto cfg = of::config::ConfigNode::map();
    cfg["_target_"] = of::config::ConfigNode::string(name);
    cfg["k"] = of::config::ConfigNode::string("10x");
    cfg["bits"] = of::config::ConfigNode::integer(8);
    cfg["rank"] = of::config::ConfigNode::integer(4);
    auto codec = of::compression::make_compressor(cfg, /*strict=*/false);
    Rng rng(21);
    const Tensor t = Tensor::randn({512}, rng);
    const Tensor out = codec->decompress(codec->compress(t));
    EXPECT_EQ(out.numel(), t.numel()) << name;
  }
}

TEST(Factory, UnknownCodecThrows) {
  auto cfg = of::config::parse_yaml("_target_: Zstd\n");
  EXPECT_THROW(of::compression::make_compressor(cfg), std::runtime_error);
}

// --- fused quantize-on-the-wire ------------------------------------------------

TEST(QsgdFused, CompressScaledMatchesUnfusedBytes) {
  // The fused path (scale-while-flatten a bucket tile, quantize in place)
  // must produce the exact bytes of the two-pass reference: flatten with the
  // double-precision scale into one float vector, then compress that.
  for (int bits : {8, 16}) {
    of::compression::QSGD codec(bits, /*seed=*/31, /*bucket_size=*/64);
    Rng rng(41);
    std::vector<Tensor> payload;
    payload.push_back(Tensor::randn({9, 7}, rng));   // odd shapes so tensor
    payload.push_back(Tensor::randn({130}, rng));    // boundaries straddle
    payload.push_back(Tensor::randn({3}, rng));      // bucket boundaries
    const double scale = 0.3125;
    std::size_t total = 0;
    for (const auto& t : payload) total += t.numel();
    Tensor flat({total});
    std::size_t off = 0;
    for (const auto& t : payload)
      for (std::size_t j = 0; j < t.numel(); ++j)
        flat[off++] = static_cast<float>(static_cast<double>(t[j]) * scale);
    codec.set_stream(2, 5);
    const auto reference = codec.compress(flat);
    of::compression::Compressed fused;
    codec.set_stream(2, 5);
    ASSERT_TRUE(codec.compress_scaled(payload, scale, fused));
    EXPECT_EQ(fused.payload, reference.payload) << "bits=" << bits;
    EXPECT_EQ(fused.original_numel, reference.original_numel);
  }
}

TEST(QsgdFused, NonFiniteInputThrowsWithFlatCoordinate) {
  of::compression::QSGD codec(8, 1, /*bucket_size=*/32);
  Rng rng(42);
  std::vector<Tensor> payload;
  payload.push_back(Tensor::randn({40}, rng));
  payload.push_back(Tensor::randn({40}, rng));
  payload[1][5] = std::numeric_limits<float>::quiet_NaN();  // flat coord 45
  of::compression::Compressed out;
  try {
    (void)codec.compress_scaled(payload, 1.0, out);
    FAIL() << "expected NonFiniteUpdateError";
  } catch (const of::NonFiniteUpdateError& e) {
    EXPECT_EQ(e.coordinate(), 45u);
  }
}

TEST(QSGD, NonFiniteInputRejectedAtAdmission) {
  // The unfused path screens too: a NaN poisons the bucket norm, which used
  // to propagate silently into every coordinate of the bucket.
  of::compression::QSGD codec(8, 1);
  Tensor t({16});
  for (std::size_t i = 0; i < 16; ++i) t[i] = 1.0f;
  t[7] = std::numeric_limits<float>::infinity();
  EXPECT_THROW((void)codec.compress(t), of::NonFiniteUpdateError);
}

TEST(QSGD, ZeroNormBucketConsumesNoDrawsAndDecodesToZero) {
  // A bucket of exact zeros short-circuits before drawing any rounding
  // randomness (the seed's contract — replays stay aligned) and must
  // decode back to exact zeros; neighbouring buckets keep their own
  // per-bucket streams regardless.
  of::compression::QSGD codec(8, 3, /*bucket_size=*/8);
  Rng rng(43);
  Tensor t({24});
  for (std::size_t i = 0; i < 24; ++i) t[i] = rng.next_float() + 0.1f;
  for (std::size_t i = 8; i < 16; ++i) t[i] = 0.0f;  // bucket 1 all-zero
  codec.set_stream(1, 1);
  const auto c = codec.compress(t);
  const Tensor out = codec.decompress(c);
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(out[i], 0.0f);
  // Bytes for buckets 0 and 2 match a tensor where bucket 1 is nonzero —
  // per-bucket streams mean the zero bucket cannot shift its neighbours.
  Tensor t2 = t;
  for (std::size_t i = 8; i < 16; ++i) t2[i] = 1.0f;
  codec.set_stream(1, 1);
  const auto c2 = codec.compress(t2);
  ASSERT_EQ(c.payload.size(), c2.payload.size());
  const std::size_t bucket_bytes = 4 + 8;  // norm + 8 int8 codes
  EXPECT_EQ(std::memcmp(c.payload.data(), c2.payload.data(), bucket_bytes), 0);
  EXPECT_EQ(std::memcmp(c.payload.data() + 2 * bucket_bytes,
                        c2.payload.data() + 2 * bucket_bytes, bucket_bytes),
            0);
}

}  // namespace
