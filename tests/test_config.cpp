#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/compose.hpp"
#include "config/registry.hpp"
#include "config/yaml.hpp"

namespace {

using of::config::ConfigNode;
using of::config::parse_yaml;

TEST(Yaml, Scalars) {
  const ConfigNode n = parse_yaml(R"(
a: 1
b: -7
c: 2.5
d: true
e: false
f: hello world
g: "quoted: string"
h: null
i: ~
j: 1.0e-4
)");
  EXPECT_EQ(n.at("a").as_int(), 1);
  EXPECT_EQ(n.at("b").as_int(), -7);
  EXPECT_DOUBLE_EQ(n.at("c").as_double(), 2.5);
  EXPECT_TRUE(n.at("d").as_bool());
  EXPECT_FALSE(n.at("e").as_bool());
  EXPECT_EQ(n.at("f").as_string(), "hello world");
  EXPECT_EQ(n.at("g").as_string(), "quoted: string");
  EXPECT_TRUE(n.at("h").is_null());
  EXPECT_TRUE(n.at("i").is_null());
  EXPECT_DOUBLE_EQ(n.at("j").as_double(), 1e-4);
}

TEST(Yaml, NestedMaps) {
  const ConfigNode n = parse_yaml(R"(
outer:
  middle:
    inner: 42
  sibling: x
)");
  EXPECT_EQ(n.at_path("outer.middle.inner").as_int(), 42);
  EXPECT_EQ(n.at_path("outer.sibling").as_string(), "x");
}

TEST(Yaml, BlockLists) {
  const ConfigNode n = parse_yaml(R"(
items:
  - 1
  - 2
  - three
)");
  const auto& items = n.at("items");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items.at(std::size_t{2}).as_string(), "three");
}

TEST(Yaml, FlowLists) {
  const ConfigNode n = parse_yaml("ms: [100, 150, 200]\nnested: [[1, 2], [3]]\n");
  EXPECT_EQ(n.at("ms").size(), 3u);
  EXPECT_EQ(n.at("ms").at(std::size_t{1}).as_int(), 150);
  EXPECT_EQ(n.at("nested").at(std::size_t{0}).at(std::size_t{1}).as_int(), 2);
}

TEST(Yaml, FlowMaps) {
  const ConfigNode n = parse_yaml(
      "link: {latency_us: 50, bandwidth_mbps: 10000, mode: sleep}\n"
      "nested: {outer: {inner: 1}, list: [1, 2]}\n"
      "empty: {}\n");
  EXPECT_EQ(n.at_path("link.latency_us").as_int(), 50);
  EXPECT_EQ(n.at_path("link.mode").as_string(), "sleep");
  EXPECT_EQ(n.at_path("nested.outer.inner").as_int(), 1);
  EXPECT_EQ(n.at_path("nested.list").size(), 2u);
  EXPECT_TRUE(n.at("empty").is_map());
  EXPECT_EQ(n.at("empty").size(), 0u);
}

TEST(Yaml, FlowMapInsideFlowList) {
  const ConfigNode n = parse_yaml("nodes: [{id: 0, role: aggregator}, {id: 1}]\n");
  ASSERT_EQ(n.at("nodes").size(), 2u);
  EXPECT_EQ(n.at("nodes").at(std::size_t{0}).at("role").as_string(), "aggregator");
}

TEST(Yaml, UnterminatedFlowMapThrows) {
  EXPECT_THROW(parse_yaml("a: {b: 1\n"), std::runtime_error);
}

TEST(Yaml, ListOfMaps) {
  const ConfigNode n = parse_yaml(R"(
nodes:
  - id: 0
    role: aggregator
  - id: 1
    role: trainer
)");
  ASSERT_EQ(n.at("nodes").size(), 2u);
  EXPECT_EQ(n.at("nodes").at(std::size_t{0}).at("role").as_string(), "aggregator");
  EXPECT_EQ(n.at("nodes").at(std::size_t{1}).at("id").as_int(), 1);
}

TEST(Yaml, CommentsIgnored) {
  const ConfigNode n = parse_yaml(R"(
# leading comment
a: 1   # trailing comment
b: "text # not a comment"
)");
  EXPECT_EQ(n.at("a").as_int(), 1);
  EXPECT_EQ(n.at("b").as_string(), "text # not a comment");
}

TEST(Yaml, PaperFig2ConfigParses) {
  // The exact structure of the paper's Fig. 2 example.
  const ConfigNode n = parse_yaml(R"(
defaults:
  - override topology: centralized
  - override model: resnet18
  - override datamodule: cifar10
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 16
  inner_comm:
    _target_: src.omnifed.communicator.GrpcCommunicator
    port: 50051
    master_addr: 127.0.0.1
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 2
)");
  EXPECT_EQ(n.at_path("topology.num_clients").as_int(), 16);
  EXPECT_EQ(n.at_path("topology.inner_comm.port").as_int(), 50051);
  EXPECT_EQ(n.at_path("topology.inner_comm.master_addr").as_string(), "127.0.0.1");
  EXPECT_EQ(n.at("defaults").size(), 3u);
}

TEST(Yaml, PaperFig4CompressionConfigParses) {
  const ConfigNode n = parse_yaml(R"(
inner_comm:
  _target_: src.omnifed.communicator.TorchDistCommunicator
  port: 28670
  compression:
    _target_: src.omnifed.communicator.compression.TopK
    k: 1000x
)");
  EXPECT_EQ(n.at_path("inner_comm.compression.k").as_string(), "1000x");
}

TEST(Yaml, DumpParseFixpoint) {
  const ConfigNode n = parse_yaml(R"(
a: 1
b: [1, 2.5, true]
c:
  d: text
  e:
    - x: 1
    - y: 2
f: "needs: quoting"
)");
  const ConfigNode reparsed = parse_yaml(n.dump());
  EXPECT_TRUE(n == reparsed) << n.dump() << "\n----\n" << reparsed.dump();
}

TEST(Yaml, ErrorsCarryLineNumbers) {
  try {
    parse_yaml("a: 1\n\tb: 2\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Yaml, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_yaml("a: \"oops\n"), std::runtime_error);
}

TEST(Yaml, NumericStringsRoundtripQuoted) {
  ConfigNode n = ConfigNode::map();
  n["v"] = ConfigNode::string("1000x");
  n["w"] = ConfigNode::string("42");
  const ConfigNode r = parse_yaml(n.dump());
  EXPECT_EQ(r.at("v").as_string(), "1000x");
  EXPECT_EQ(r.at("w").as_string(), "42");  // stays a string thanks to quoting
}

// --- ConfigNode API ---------------------------------------------------------------

TEST(ConfigNode, TypedGetters) {
  const ConfigNode n = parse_yaml("i: 3\nf: 1.5\ns: hi\nb: true\n");
  EXPECT_EQ(n.get<int>("i"), 3);
  EXPECT_EQ(n.get<std::size_t>("i"), 3u);
  EXPECT_FLOAT_EQ(n.get<float>("f"), 1.5f);
  EXPECT_DOUBLE_EQ(n.get<double>("i"), 3.0);  // int widens
  EXPECT_EQ(n.get<std::string>("s"), "hi");
  EXPECT_TRUE(n.get<bool>("b"));
  EXPECT_EQ(n.get_or<int>("missing", 9), 9);
  EXPECT_THROW(n.at("missing"), std::runtime_error);
  EXPECT_THROW(n.at("s").as_int(), std::runtime_error);
}

TEST(ConfigNode, SetPathCreatesIntermediates) {
  ConfigNode n = ConfigNode::map();
  n.set_path("a.b.c", ConfigNode::integer(5));
  EXPECT_EQ(n.at_path("a.b.c").as_int(), 5);
  EXPECT_TRUE(n.has_path("a.b"));
  EXPECT_FALSE(n.has_path("a.x"));
}

TEST(ConfigNode, MergeSemantics) {
  ConfigNode base = parse_yaml("a: 1\nm:\n  x: 1\n  y: 2\n");
  const ConfigNode overlay = parse_yaml("b: 2\nm:\n  y: 3\n  z: 4\n");
  base.merge_from(overlay);
  EXPECT_EQ(base.at("a").as_int(), 1);
  EXPECT_EQ(base.at("b").as_int(), 2);
  EXPECT_EQ(base.at_path("m.x").as_int(), 1);
  EXPECT_EQ(base.at_path("m.y").as_int(), 3);  // overlay wins
  EXPECT_EQ(base.at_path("m.z").as_int(), 4);
}

TEST(ConfigNode, MapPreservesInsertionOrder) {
  const ConfigNode n = parse_yaml("z: 1\na: 2\nm: 3\n");
  const auto& items = n.items();
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "m");
}

// --- composition -------------------------------------------------------------------

class ComposeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "of_cfg_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    ASSERT_EQ(0, std::system(("mkdir -p " + dir_ + "/topology " + dir_ + "/algorithm").c_str()));
    write(dir_ + "/topology/centralized.yaml",
          "_target_: src.omnifed.topology.CentralizedTopology\nnum_clients: 4\n");
    write(dir_ + "/topology/ring.yaml",
          "_target_: src.omnifed.topology.RingTopology\nnum_nodes: 6\n");
    write(dir_ + "/algorithm/fedavg.yaml",
          "_target_: src.omnifed.algorithm.FedAvg\nglobal_rounds: 2\n");
    write(dir_ + "/algorithm/fedprox.yaml",
          "_target_: src.omnifed.algorithm.FedProx\nglobal_rounds: 2\nmu: 0.1\n");
    write(dir_ + "/base.yaml", "seed: 17\n");
    write(dir_ + "/main.yaml", R"(defaults:
  - base
  - topology: centralized
  - algorithm: fedavg
eval_every: 1
)");
  }

  void write(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  }

  std::string dir_;
};

TEST_F(ComposeFixture, DefaultsPullGroupFiles) {
  const ConfigNode n = of::config::compose(dir_ + "/main.yaml");
  EXPECT_EQ(n.at("seed").as_int(), 17);
  EXPECT_EQ(n.at_path("topology.num_clients").as_int(), 4);
  EXPECT_EQ(of::config::target_basename(n.at_path("algorithm._target_").as_string()),
            "FedAvg");
  EXPECT_FALSE(n.has("defaults"));  // consumed by composition
}

TEST_F(ComposeFixture, BodyWinsOverDefaults) {
  write(dir_ + "/main2.yaml", R"(defaults:
  - topology: centralized
topology:
  num_clients: 99
)");
  const ConfigNode n = of::config::compose(dir_ + "/main2.yaml");
  EXPECT_EQ(n.at_path("topology.num_clients").as_int(), 99);
  // _target_ from the group file survives the merge.
  EXPECT_TRUE(n.has_path("topology._target_"));
}

TEST_F(ComposeFixture, CliOverridesWinOverEverything) {
  const ConfigNode n = of::config::compose(
      dir_ + "/main.yaml",
      {"topology.num_clients=12", "algorithm.mu=0.5", "seed=1"});
  EXPECT_EQ(n.at_path("topology.num_clients").as_int(), 12);
  EXPECT_DOUBLE_EQ(n.at_path("algorithm.mu").as_double(), 0.5);
  EXPECT_EQ(n.at("seed").as_int(), 1);
}

TEST_F(ComposeFixture, SingleLineAlgorithmSwap) {
  // The paper's headline usability claim: FedAvg → FedProx is one change.
  write(dir_ + "/swapped.yaml", R"(defaults:
  - base
  - topology: centralized
  - algorithm: fedprox
)");
  const ConfigNode n = of::config::compose(dir_ + "/swapped.yaml");
  EXPECT_EQ(of::config::target_basename(n.at_path("algorithm._target_").as_string()),
            "FedProx");
  EXPECT_DOUBLE_EQ(n.at_path("algorithm.mu").as_double(), 0.1);
}

TEST_F(ComposeFixture, OverrideMarkerReplacesEarlierDefault) {
  // Hydra's `override group: option` syntax: the later entry wins.
  write(dir_ + "/override.yaml", R"(defaults:
  - topology: centralized
  - algorithm: fedavg
  - override algorithm: fedprox
)");
  const ConfigNode n = of::config::compose(dir_ + "/override.yaml");
  EXPECT_EQ(of::config::target_basename(n.at_path("algorithm._target_").as_string()),
            "FedProx");
}

TEST_F(ComposeFixture, MissingGroupFileThrows) {
  write(dir_ + "/bad.yaml", "defaults:\n  - topology: mesh\n");
  EXPECT_THROW(of::config::compose(dir_ + "/bad.yaml"), std::runtime_error);
}

TEST(Override, ParsesTypedValues) {
  ConfigNode n = ConfigNode::map();
  of::config::apply_override(n, "a.b=3");
  of::config::apply_override(n, "a.c=2.5");
  of::config::apply_override(n, "a.d=true");
  of::config::apply_override(n, "a.e=hello");
  of::config::apply_override(n, "a.f=[1, 2]");
  EXPECT_EQ(n.at_path("a.b").as_int(), 3);
  EXPECT_DOUBLE_EQ(n.at_path("a.c").as_double(), 2.5);
  EXPECT_TRUE(n.at_path("a.d").as_bool());
  EXPECT_EQ(n.at_path("a.e").as_string(), "hello");
  EXPECT_EQ(n.at_path("a.f").size(), 2u);
  EXPECT_THROW(of::config::apply_override(n, "novalue"), std::runtime_error);
}

// --- registry ---------------------------------------------------------------------

struct Widget {
  virtual ~Widget() = default;
  virtual int id() const = 0;
};
struct WidgetA : Widget {
  int id() const override { return 1; }
};
struct WidgetB : Widget {
  int v;
  explicit WidgetB(int value) : v(value) {}
  int id() const override { return v; }
};

TEST(Registry, CreateByTargetBasename) {
  of::config::Registry<Widget> reg;
  reg.add("WidgetA", [](const ConfigNode&) { return std::make_unique<WidgetA>(); });
  reg.add("WidgetB", [](const ConfigNode& cfg) {
    return std::make_unique<WidgetB>(cfg.get_or<int>("v", 0));
  });
  ConfigNode cfg = parse_yaml("_target_: src.omnifed.widgets.WidgetB\nv: 42\n");
  EXPECT_EQ(reg.create(cfg)->id(), 42);
  EXPECT_TRUE(reg.contains("a.b.WidgetA"));
  EXPECT_FALSE(reg.contains("WidgetC"));
  EXPECT_THROW(reg.create("WidgetC", cfg), std::runtime_error);
  EXPECT_THROW(reg.add("WidgetA", nullptr), std::runtime_error);
  EXPECT_EQ(reg.names().size(), 2u);
}

TEST(Registry, MissingTargetThrows) {
  of::config::Registry<Widget> reg;
  EXPECT_THROW(reg.create(ConfigNode::map()), std::runtime_error);
}

TEST(Yaml, DuplicateMapKeysThrowWithLineNumbers) {
  try {
    parse_yaml("a: 1\nb: 2\na: 3\n");
    FAIL() << "duplicate top-level key not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    EXPECT_NE(what.find("'a'"), std::string::npos) << what;
  }
  EXPECT_THROW(parse_yaml("m:\n  x: 1\n  x: 2\n"), std::runtime_error);
  EXPECT_THROW(parse_yaml("m: {k: 1, k: 2}\n"), std::runtime_error);
  EXPECT_THROW(parse_yaml("l:\n  - a: 1\n    a: 2\n"), std::runtime_error);
  // Same key at different depths is fine.
  EXPECT_NO_THROW(parse_yaml("a: 1\nm:\n  a: 2\n"));
}

}  // namespace
