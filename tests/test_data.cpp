#include <gtest/gtest.h>

#include <set>

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "data/partition.hpp"

namespace {

using of::data::DatasetSpec;
using of::data::InMemoryDataset;
using of::data::make_synthetic;
using of::data::preset;

TEST(Dataset, PresetsExist) {
  for (const auto& name : of::data::preset_names()) {
    const DatasetSpec s = preset(name);
    EXPECT_EQ(s.name, name);
    EXPECT_GE(s.classes, 2u);
  }
  EXPECT_THROW(preset("imagenet"), std::runtime_error);
}

TEST(Dataset, PresetClassCountsMatchPaperDatasets) {
  EXPECT_EQ(preset("cifar10_like").classes, 10u);
  EXPECT_EQ(preset("cifar100_like").classes, 100u);
  EXPECT_EQ(preset("caltech101_like").classes, 101u);
  EXPECT_EQ(preset("caltech256_like").classes, 257u);
}

TEST(Dataset, SynthesisDeterministic) {
  const auto a = make_synthetic(preset("toy"), 5);
  const auto b = make_synthetic(preset("toy"), 5);
  EXPECT_TRUE(a.train.x().allclose(b.train.x(), 0.0f, 0.0f));
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

TEST(Dataset, DifferentSeedsDiffer) {
  const auto a = make_synthetic(preset("toy"), 5);
  const auto b = make_synthetic(preset("toy"), 6);
  EXPECT_FALSE(a.train.x().allclose(b.train.x()));
}

TEST(Dataset, SizesMatchSpec) {
  const DatasetSpec s = preset("toy");
  const auto tt = make_synthetic(s, 1);
  EXPECT_EQ(tt.train.size(), s.classes * s.train_per_class);
  EXPECT_EQ(tt.test.size(), s.classes * s.test_per_class);
  EXPECT_EQ(tt.train.dim(), s.dim);
  EXPECT_EQ(tt.train.num_classes(), s.classes);
}

TEST(Dataset, AllClassesPresent) {
  const auto tt = make_synthetic(preset("toy"), 2);
  std::set<std::size_t> seen(tt.train.labels().begin(), tt.train.labels().end());
  EXPECT_EQ(seen.size(), preset("toy").classes);
}

TEST(Dataset, LabelNoiseFlipsRoughlyTheRequestedFraction) {
  DatasetSpec s = preset("toy");
  s.train_per_class = 500;
  s.label_noise = 0.2f;
  const auto noisy = make_synthetic(s, 3);
  DatasetSpec clean_spec = s;
  clean_spec.label_noise = 0.0f;
  const auto clean = make_synthetic(clean_spec, 3);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < noisy.train.size(); ++i)
    if (noisy.train.label(i) != clean.train.label(i)) ++flipped;
  const double rate = static_cast<double>(flipped) / static_cast<double>(noisy.train.size());
  // 20% noise, of which 1/classes lands back on the true label.
  EXPECT_NEAR(rate, 0.2 * (1.0 - 1.0 / 4.0), 0.03);
}

TEST(Dataset, GatherPullsRequestedRows) {
  const auto tt = make_synthetic(preset("toy"), 1);
  const auto batch = tt.train.gather({0, 5, 9});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.y[1], tt.train.label(5));
  for (std::size_t d = 0; d < tt.train.dim(); ++d)
    EXPECT_EQ(batch.x(2, d), tt.train.x()(9, d));
  EXPECT_THROW(tt.train.gather({tt.train.size()}), std::runtime_error);
}

TEST(Dataset, HarderPresetsAreLessSeparated) {
  EXPECT_GT(preset("cifar10_like").separation, preset("cifar100_like").separation);
  EXPECT_GT(preset("caltech101_like").separation, preset("caltech256_like").separation);
}

// --- partitions ------------------------------------------------------------------

std::vector<std::size_t> flatten_sorted(const of::data::PartitionIndices& parts) {
  std::vector<std::size_t> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(Partition, IidCoversEverythingOnce) {
  const auto parts = of::data::iid_partition(103, 8, 1);
  ASSERT_EQ(parts.size(), 8u);
  const auto all = flatten_sorted(parts);
  ASSERT_EQ(all.size(), 103u);
  for (std::size_t i = 0; i < 103; ++i) EXPECT_EQ(all[i], i);
}

TEST(Partition, IidBalanced) {
  const auto parts = of::data::iid_partition(100, 4, 2);
  for (const auto& p : parts) EXPECT_EQ(p.size(), 25u);
}

TEST(Partition, IidDeterministic) {
  EXPECT_EQ(of::data::iid_partition(50, 3, 7), of::data::iid_partition(50, 3, 7));
  EXPECT_NE(of::data::iid_partition(50, 3, 7), of::data::iid_partition(50, 3, 8));
}

TEST(Partition, DirichletCoversEverythingOnce) {
  const auto tt = make_synthetic(preset("toy"), 1);
  const auto parts =
      of::data::dirichlet_partition(tt.train.labels(), 4, 6, 0.5, 3);
  const auto all = flatten_sorted(parts);
  ASSERT_EQ(all.size(), tt.train.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(Partition, DirichletEveryClientNonEmpty) {
  const auto tt = make_synthetic(preset("toy"), 1);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto parts =
        of::data::dirichlet_partition(tt.train.labels(), 4, 16, 0.1, seed);
    for (const auto& p : parts) EXPECT_FALSE(p.empty());
  }
}

TEST(Partition, DirichletLowAlphaIsMoreSkewedThanHighAlpha) {
  const auto tt = make_synthetic(preset("toy"), 1);
  auto skew = [&](double alpha) {
    const auto parts =
        of::data::dirichlet_partition(tt.train.labels(), 4, 8, alpha, 11);
    // Mean per-client label entropy; lower = more skew.
    double entropy = 0.0;
    for (const auto& p : parts) {
      std::vector<double> counts(4, 0.0);
      for (std::size_t idx : p) counts[tt.train.label(idx)] += 1.0;
      double h = 0.0;
      for (double c : counts) {
        if (c == 0.0) continue;
        const double q = c / static_cast<double>(p.size());
        h -= q * std::log(q);
      }
      entropy += h;
    }
    return entropy / static_cast<double>(parts.size());
  };
  EXPECT_LT(skew(0.05), skew(100.0));
}

TEST(Partition, ShardsGiveEachClientFewClasses) {
  const auto tt = make_synthetic(preset("toy"), 1);
  const auto parts = of::data::shard_partition(tt.train.labels(), 4, 1, 5);
  for (const auto& p : parts) {
    std::set<std::size_t> classes;
    for (std::size_t idx : p) classes.insert(tt.train.label(idx));
    EXPECT_LE(classes.size(), 2u);  // one contiguous shard spans ≤2 classes
  }
}

TEST(Partition, ShardsCoverEverythingOnce) {
  const auto tt = make_synthetic(preset("toy"), 1);
  const auto parts = of::data::shard_partition(tt.train.labels(), 5, 2, 5);
  const auto all = flatten_sorted(parts);
  ASSERT_EQ(all.size(), tt.train.size());
}

TEST(Partition, DispatcherRoutes) {
  const auto tt = make_synthetic(preset("toy"), 1);
  EXPECT_EQ(of::data::make_partition("iid", tt.train, 4, 0, 1).size(), 4u);
  EXPECT_EQ(of::data::make_partition("dirichlet", tt.train, 4, 0.5, 1).size(), 4u);
  EXPECT_EQ(of::data::make_partition("shards", tt.train, 4, 2, 1).size(), 4u);
  EXPECT_THROW(of::data::make_partition("quantum", tt.train, 4, 0, 1),
               std::runtime_error);
}

TEST(Partition, BadArgsThrow) {
  EXPECT_THROW(of::data::iid_partition(2, 5, 1), std::runtime_error);
  EXPECT_THROW(of::data::dirichlet_partition({0, 1}, 2, 2, -1.0, 1), std::runtime_error);
}

// --- loader ----------------------------------------------------------------------

TEST(Loader, BatchesCoverSubsetExactly) {
  const auto tt = make_synthetic(preset("toy"), 1);
  of::data::DataLoader loader(tt.train, {1, 3, 5, 7, 9}, 2, /*shuffle=*/false, 1);
  EXPECT_EQ(loader.size(), 5u);
  EXPECT_EQ(loader.num_batches(), 3u);
  std::size_t total = 0;
  for (std::size_t b = 0; b < loader.num_batches(); ++b) total += loader.batch(b).size();
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(loader.batch(2).size(), 1u);  // tail batch
}

TEST(Loader, NoShuffleIsStable) {
  const auto tt = make_synthetic(preset("toy"), 1);
  of::data::DataLoader loader(tt.train, {4, 2, 8}, 3, false, 1);
  const auto a = loader.batch(0);
  loader.reshuffle();
  const auto b = loader.batch(0);
  EXPECT_EQ(a.y, b.y);
}

TEST(Loader, ShuffleChangesOrderButNotContent) {
  const auto tt = make_synthetic(preset("toy"), 1);
  std::vector<std::size_t> idx(64);
  for (std::size_t i = 0; i < 64; ++i) idx[i] = i;
  of::data::DataLoader loader(tt.train, idx, 64, true, 3);
  auto labels_of = [&] {
    auto y = loader.batch(0).y;
    return y;
  };
  const auto a = labels_of();
  loader.reshuffle();
  const auto b = labels_of();
  auto sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
  EXPECT_NE(a, b);  // astronomically unlikely to coincide
}

TEST(Loader, FullDatasetConvenienceCtor) {
  const auto tt = make_synthetic(preset("toy"), 1);
  of::data::DataLoader loader(tt.train, 32, false, 1);
  EXPECT_EQ(loader.size(), tt.train.size());
}

TEST(Loader, InvalidArgsThrow) {
  const auto tt = make_synthetic(preset("toy"), 1);
  EXPECT_THROW(of::data::DataLoader(tt.train, {0}, 0, false, 1), std::runtime_error);
  EXPECT_THROW(of::data::DataLoader(tt.train, {}, 4, false, 1), std::runtime_error);
  EXPECT_THROW(of::data::DataLoader(tt.train, {tt.train.size()}, 4, false, 1),
               std::runtime_error);
}

}  // namespace
