// End-to-end Engine integration tests: every topology kind, every backend
// combination, plugin wiring, and learning-progress sanity checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "config/yaml.hpp"
#include "net_util.hpp"
#include "core/engine.hpp"

namespace {

using of::config::ConfigNode;
using of::config::parse_yaml;
using of::core::Engine;
using of::core::RunResult;

ConfigNode base_config() {
  return parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 3
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
)");
}

TEST(Engine, CentralizedFedAvgLearns) {
  Engine engine(base_config());
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_GT(r.final_accuracy, 0.5f);  // the toy task is easy
  EXPECT_GT(r.rounds.front().train_loss, r.rounds.back().train_loss * 0.5);
  EXPECT_GT(r.root_comm.bytes_sent, 0u);
  EXPECT_GT(r.root_comm.bytes_received, 0u);
}

TEST(Engine, RingTopologyLearns) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology._target_", ConfigNode::string("RingTopology"));
  cfg.set_path("topology.num_nodes", ConfigNode::integer(4));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_GT(r.final_accuracy, 0.5f);
}

TEST(Engine, HierarchicalTopologyLearns) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology._target_", ConfigNode::string("HierarchicalTopology"));
  cfg.set_path("topology.groups", ConfigNode::integer(2));
  cfg.set_path("topology.group_size", ConfigNode::integer(2));
  cfg.set_path("topology.outer_comm._target_",
               ConfigNode::string("TorchDistCommunicator"));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_GT(r.final_accuracy, 0.5f);
  EXPECT_GT(r.outer_comm.bytes_sent, 0u);
}

TEST(Engine, CompressionViaPaperFig4Placement) {
  // Compression configured inside inner_comm, exactly like the paper's Fig. 4.
  ConfigNode cfg = base_config();
  cfg.set_path("topology.inner_comm.compression._target_",
               ConfigNode::string("src.omnifed.communicator.compression.TopK"));
  cfg.set_path("topology.inner_comm.compression.k", ConfigNode::string("10x"));
  cfg.set_path("topology.inner_comm.compression.error_feedback",
               ConfigNode::boolean(true));
  Engine engine(cfg);
  const RunResult r = engine.run();
  EXPECT_GT(r.final_accuracy, 0.4f);

  // Compression must reduce upstream bytes vs. the plain run.
  Engine plain(base_config());
  const RunResult p = plain.run();
  EXPECT_LT(r.root_comm.bytes_received, p.root_comm.bytes_received / 2);
}

TEST(Engine, QsgdCompressionTopLevelPlacement) {
  ConfigNode cfg = base_config();
  cfg.set_path("compression._target_", ConfigNode::string("QSGD"));
  cfg.set_path("compression.bits", ConfigNode::integer(8));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.4f);
}

TEST(Engine, DifferentialPrivacyPluginRuns) {
  ConfigNode cfg = base_config();
  cfg.set_path("privacy._target_",
               ConfigNode::string("src.omnifed.privacy.DifferentialPrivacy"));
  cfg.set_path("privacy.epsilon", ConfigNode::floating(10.0));
  cfg.set_path("privacy.delta", ConfigNode::floating(1e-5));
  cfg.set_path("privacy.clip_norm", ConfigNode::floating(5.0));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  // With a generous ε the model still learns something.
  EXPECT_GT(r.final_accuracy, 0.25f);
}

TEST(Engine, SecureAggregationMatchesPlainRun) {
  // SA masks cancel in the sum, so the learning trajectory matches the
  // unprotected run up to fixed-point quantization.
  ConfigNode cfg = base_config();
  cfg.set_path("privacy._target_", ConfigNode::string("SecureAggregation"));
  Engine sa_engine(cfg);
  const RunResult sa = sa_engine.run();
  Engine plain(base_config());
  const RunResult p = plain.run();
  EXPECT_NEAR(sa.final_accuracy, p.final_accuracy, 0.05f);
}

TEST(Engine, HomomorphicEncryptionSmallModel) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology.num_clients", ConfigNode::integer(2));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(1));
  cfg.set_path("privacy._target_", ConfigNode::string("HomomorphicEncryption"));
  cfg.set_path("privacy.key_bits", ConfigNode::integer(128));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_GT(r.rounds[0].train_loss, 0.0);
}

TEST(Engine, CompressionPlusPrivacyRejected) {
  ConfigNode cfg = base_config();
  cfg.set_path("compression._target_", ConfigNode::string("TopK"));
  cfg.set_path("compression.k", ConfigNode::string("10x"));
  cfg.set_path("privacy._target_", ConfigNode::string("SecureAggregation"));
  Engine engine(cfg);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, RingRejectsStarCommunicator) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology._target_", ConfigNode::string("RingTopology"));
  cfg.set_path("topology.inner_comm._target_", ConfigNode::string("GrpcCommunicator"));
  Engine engine(cfg);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, DeterministicAcrossRuns) {
  Engine a(base_config());
  Engine b(base_config());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
  EXPECT_EQ(ra.rounds.back().train_loss, rb.rounds.back().train_loss);
}

TEST(Engine, NonIidShardsPartitionRuns) {
  ConfigNode cfg = base_config();
  cfg.set_path("datamodule.partition", ConfigNode::string("shards"));
  cfg.set_path("datamodule.alpha", ConfigNode::integer(2));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.3f);
}

TEST(Engine, WeightedAggregationHandlesImbalance) {
  // Dirichlet with small alpha gives very unequal shard sizes; the run must
  // still converge thanks to sample-weighted aggregation.
  ConfigNode cfg = base_config();
  cfg.set_path("datamodule.partition", ConfigNode::string("dirichlet"));
  cfg.set_path("datamodule.alpha", ConfigNode::floating(0.2));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(5));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.4f);
}

TEST(Engine, EvalEveryControlsEvaluationRounds) {
  ConfigNode cfg = base_config();
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(4));
  cfg.set_path("eval_every", ConfigNode::integer(2));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 4u);
  EXPECT_LT(r.rounds[0].accuracy, 0.0f);  // not evaluated
  EXPECT_GE(r.rounds[1].accuracy, 0.0f);  // round 2 evaluated
  EXPECT_LT(r.rounds[2].accuracy, 0.0f);
  EXPECT_GE(r.rounds[3].accuracy, 0.0f);  // last round always evaluated
}

TEST(Engine, ModeledLinksAccountTime) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology.inner_comm.link.latency_us", ConfigNode::integer(100));
  cfg.set_path("topology.inner_comm.link.bandwidth_mbps", ConfigNode::integer(100));
  cfg.set_path("topology.inner_comm.link.mode", ConfigNode::string("virtual"));
  Engine engine(cfg);
  const RunResult r = engine.run();
  EXPECT_GT(r.inner_comm.modeled_seconds, 0.0);
}

TEST(Engine, RunTwiceThrows) {
  Engine engine(base_config());
  (void)engine.run();
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, ResultCarriesExperimentIdentity) {
  ConfigNode cfg = base_config();
  cfg.set_path("model", ConfigNode::string("resnet18_mini"));
  cfg.set_path("algorithm._target_", ConfigNode::string("FedProx"));
  Engine engine(cfg);
  const RunResult r = engine.run();
  EXPECT_EQ(r.model, "resnet18_mini");
  EXPECT_EQ(r.algorithm, "FedProx");
  EXPECT_EQ(r.dataset, "toy");
  EXPECT_GT(r.model_scalars, 1000u);
}

TEST(Engine, AmqpBackendMatchesInProc) {
  // Swapping TorchDist → AMQP pub/sub is a one-line config change and must
  // not alter the learning trajectory (paper §3.3's communicator claim).
  ConfigNode cfg = base_config();
  cfg.set_path("topology.inner_comm._target_",
               ConfigNode::string("src.omnifed.communicator.AMQPCommunicator"));
  Engine amqp_engine(cfg);
  const RunResult amqp = amqp_engine.run();
  Engine inproc_engine(base_config());
  const RunResult inproc = inproc_engine.run();
  EXPECT_NEAR(amqp.final_accuracy, inproc.final_accuracy, 1e-6f);
  EXPECT_NEAR(amqp.rounds.back().train_loss, inproc.rounds.back().train_loss, 1e-5);
}

TEST(Engine, AmqpRingTopology) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology._target_", ConfigNode::string("RingTopology"));
  cfg.set_path("topology.inner_comm._target_", ConfigNode::string("AMQPCommunicator"));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.5f);
}

TEST(Engine, HierarchicalWithTcpInnerGroups) {
  // Each site runs its own gRPC-style star (one port per group), leaders
  // exchange over an in-proc outer tier.
  ConfigNode cfg = base_config();
  cfg.set_path("topology._target_", ConfigNode::string("HierarchicalTopology"));
  cfg.set_path("topology.groups", ConfigNode::integer(2));
  cfg.set_path("topology.group_size", ConfigNode::integer(2));
  cfg.set_path("topology.inner_comm._target_", ConfigNode::string("GrpcCommunicator"));
  // The engine derives each group's listen port as base+group, so the whole
  // block must be free, not just the base.
  cfg.set_path("topology.inner_comm.port",
               ConfigNode::integer(of::testutil::ephemeral_port_block(2)));
  cfg.set_path("topology.outer_comm._target_",
               ConfigNode::string("TorchDistCommunicator"));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.4f);
}

TEST(Engine, TcpBackendMatchesInProc) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology.inner_comm._target_", ConfigNode::string("GrpcCommunicator"));
  cfg.set_path("topology.inner_comm.port", ConfigNode::integer(of::testutil::ephemeral_port()));
  Engine tcp_engine(cfg);
  const RunResult tcp = tcp_engine.run();

  Engine inproc_engine(base_config());
  const RunResult inproc = inproc_engine.run();

  ASSERT_EQ(tcp.rounds.size(), inproc.rounds.size());
  // Same seed, same dataset, same round structure → identical learning.
  EXPECT_NEAR(tcp.final_accuracy, inproc.final_accuracy, 1e-6f);
  EXPECT_NEAR(tcp.rounds.back().train_loss, inproc.rounds.back().train_loss, 1e-5);
}

// --- async scheduling / heterogeneity / partial participation ----------------------

TEST(Engine, AsyncSchedulingLearns) {
  ConfigNode cfg = base_config();
  cfg.set_path("scheduling.mode", ConfigNode::string("async"));
  cfg.set_path("scheduling.alpha", ConfigNode::floating(0.6));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(8));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_GT(r.final_accuracy, 0.5f);
}

TEST(Engine, AsyncRejectsNonCentralizedAndPrivacy) {
  {
    ConfigNode cfg = base_config();
    cfg.set_path("scheduling.mode", ConfigNode::string("async"));
    cfg.set_path("topology._target_", ConfigNode::string("RingTopology"));
    Engine engine(cfg);
    EXPECT_THROW(engine.run(), std::runtime_error);
  }
  {
    ConfigNode cfg = base_config();
    cfg.set_path("scheduling.mode", ConfigNode::string("async"));
    cfg.set_path("privacy._target_", ConfigNode::string("SecureAggregation"));
    Engine engine(cfg);
    EXPECT_THROW(engine.run(), std::runtime_error);
  }
}

TEST(Engine, AsyncNotBlockedByStraggler) {
  // One client 8× slower: synchronous rounds collapse to the straggler's
  // pace; async keeps absorbing the fast clients' updates. Compare the
  // wall time to absorb the same number of updates.
  auto timed = [](bool async) {
    ConfigNode cfg = base_config();
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(6));
    cfg.set_path("eval_every", ConfigNode::integer(0));
    cfg.set_path("heterogeneity.slowdowns",
                 of::config::parse_yaml("v: [1.0, 1.0, 1.0, 8.0]").at("v"));
    if (async) cfg.set_path("scheduling.mode", ConfigNode::string("async"));
    Engine engine(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    (void)engine.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  const double sync_time = timed(false);
  const double async_time = timed(true);
  EXPECT_LT(async_time, sync_time * 1.05);
}

TEST(Engine, AsyncReportsStaleness) {
  ConfigNode cfg = base_config();
  cfg.set_path("scheduling.mode", ConfigNode::string("async"));
  cfg.set_path("heterogeneity.slowdowns",
               of::config::parse_yaml("v: [1.0, 1.0, 1.0, 4.0]").at("v"));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_GT(r.rounds.back().mean_staleness, 0.0);
}

TEST(Engine, AsyncComposesWithCompression) {
  ConfigNode cfg = base_config();
  cfg.set_path("scheduling.mode", ConfigNode::string("async"));
  cfg.set_path("compression._target_", ConfigNode::string("TopK"));
  cfg.set_path("compression.k", ConfigNode::string("10x"));
  cfg.set_path("compression.error_feedback", ConfigNode::boolean(true));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(8));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.4f);
}

TEST(Engine, AsyncOverAmqpQueues) {
  // The combination the paper's AMQP plans point at: clients push updates
  // into a queue, the aggregator pulls them asynchronously.
  ConfigNode cfg = base_config();
  cfg.set_path("scheduling.mode", ConfigNode::string("async"));
  cfg.set_path("topology.inner_comm._target_", ConfigNode::string("AMQPCommunicator"));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(6));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.4f);
}

TEST(Engine, PartialParticipationLearns) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology.num_clients", ConfigNode::integer(6));
  cfg.set_path("clients_per_round", ConfigNode::integer(2));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(8));
  Engine engine(cfg);
  const RunResult r = engine.run();
  EXPECT_GT(r.final_accuracy, 0.5f);
  // Upstream traffic must be far below full participation.
  Engine full([&] {
    ConfigNode c2 = base_config();
    c2.set_path("topology.num_clients", ConfigNode::integer(6));
    c2.set_path("algorithm.global_rounds", ConfigNode::integer(8));
    return c2;
  }());
  const RunResult f = full.run();
  EXPECT_LT(r.root_comm.bytes_received, f.root_comm.bytes_received / 2);
}

TEST(Engine, PartialParticipationRejectsSecureAggregation) {
  ConfigNode cfg = base_config();
  cfg.set_path("clients_per_round", ConfigNode::integer(2));
  cfg.set_path("privacy._target_", ConfigNode::string("SecureAggregation"));
  Engine engine(cfg);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, HeterogeneitySlowsSyncRounds) {
  // Enough local work per round (3 epochs) that the multiplicative
  // slowdown dominates scheduler jitter even on a loaded machine.
  auto round_time = [](double slow) {
    ConfigNode cfg = base_config();
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(3));
    cfg.set_path("algorithm.local_epochs", ConfigNode::integer(3));
    cfg.set_path("eval_every", ConfigNode::integer(0));
    of::config::ConfigNode list = of::config::ConfigNode::list();
    list.push_back(ConfigNode::floating(slow));
    cfg.set_path("heterogeneity.slowdowns", list);
    Engine engine(cfg);
    return engine.run().mean_round_seconds;
  };
  EXPECT_GT(round_time(30.0), round_time(1.0) * 2.0);
}

TEST(Engine, CustomTopologyGraphRuns) {
  ConfigNode cfg = base_config();
  ConfigNode topo = parse_yaml(R"(
_target_: CustomTopology
nodes:
  - {id: 0, role: aggregator}
  - {id: 1, role: trainer}
  - {id: 2, role: trainer}
  - {id: 3, role: trainer}
edges:
  - [0, 1]
  - [0, 2]
  - [0, 3]
)");
  cfg["topology"] = topo;
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.4f);
}

// --- robust aggregation / byzantine tolerance --------------------------------------

TEST(Engine, MedianSurvivesByzantineClientFedAvgDoesNot) {
  auto run_with = [](const char* rule) {
    ConfigNode cfg = base_config();
    cfg.set_path("topology.num_clients", ConfigNode::integer(6));
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(5));
    cfg.set_path("eval_every", ConfigNode::integer(5));
    cfg.set_path("byzantine.count", ConfigNode::integer(1));
    cfg.set_path("byzantine.kind", ConfigNode::string("sign_flip"));
    cfg.set_path("aggregation.rule", ConfigNode::string(rule));
    Engine engine(cfg);
    return engine.run().final_accuracy;
  };
  const float mean_acc = run_with("mean");
  const float median_acc = run_with("median");
  EXPECT_GT(median_acc, 0.6f);               // robust rule shrugs it off
  EXPECT_GT(median_acc, mean_acc + 0.15f);   // plain mean is poisoned
}

TEST(Engine, TrimmedMeanSurvivesNoiseInjection) {
  ConfigNode cfg = base_config();
  cfg.set_path("topology.num_clients", ConfigNode::integer(6));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(5));
  cfg.set_path("eval_every", ConfigNode::integer(5));
  cfg.set_path("byzantine.count", ConfigNode::integer(1));
  cfg.set_path("byzantine.kind", ConfigNode::string("noise"));
  cfg.set_path("aggregation.rule", ConfigNode::string("trimmed_mean"));
  cfg.set_path("aggregation.trim", ConfigNode::floating(0.2));
  Engine engine(cfg);
  EXPECT_GT(engine.run().final_accuracy, 0.6f);
}

TEST(Engine, RobustRuleMatchesMeanWithoutAttack) {
  ConfigNode cfg = base_config();
  cfg.set_path("aggregation.rule", ConfigNode::string("trimmed_mean"));
  cfg.set_path("aggregation.trim", ConfigNode::floating(0.0));
  Engine robust(cfg);
  Engine plain(base_config());
  // trim=0 trimmed mean is exactly the mean.
  EXPECT_NEAR(robust.run().final_accuracy, plain.run().final_accuracy, 1e-6f);
}

TEST(Engine, RobustAggregationRejectsPrivacy) {
  ConfigNode cfg = base_config();
  cfg.set_path("aggregation.rule", ConfigNode::string("median"));
  cfg.set_path("privacy._target_", ConfigNode::string("SecureAggregation"));
  Engine engine(cfg);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, CsvExport) {
  Engine engine(base_config());
  const RunResult r = engine.run();
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("round,seconds,train_loss"), std::string::npos);
  // header + 3 rounds = 4 lines
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  const std::string path = ::testing::TempDir() + "of_run.csv";
  r.write_csv(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

// --- shipped config files ---------------------------------------------------------

TEST(Configs, EveryShippedGroupFileParses) {
  const std::string dir = OF_CONFIGS_DIR;
  for (const char* rel :
       {"topology/centralized.yaml", "topology/centralized_grpc.yaml",
        "topology/ring.yaml", "topology/hierarchical.yaml", "algorithm/fedavg.yaml",
        "algorithm/fedprox.yaml", "algorithm/fedmom.yaml", "algorithm/fednova.yaml",
        "algorithm/scaffold.yaml", "algorithm/moon.yaml", "algorithm/fedper.yaml",
        "algorithm/feddyn.yaml", "algorithm/fedbn.yaml", "algorithm/ditto.yaml",
        "algorithm/diloco.yaml", "model/resnet18.yaml", "model/vgg11.yaml",
        "model/alexnet.yaml", "model/mobilenetv3.yaml", "datamodule/cifar10.yaml",
        "datamodule/cifar100.yaml", "datamodule/caltech101.yaml",
        "datamodule/caltech256.yaml", "datamodule/cifar10_noniid.yaml",
        "privacy/dp.yaml", "privacy/secure_aggregation.yaml", "privacy/he.yaml",
        "compression/topk.yaml", "compression/qsgd8.yaml", "compression/powersgd.yaml",
        "fault/none.yaml", "fault/crash_one.yaml", "fault/flaky_network.yaml",
        "fault/delay_spikes.yaml", "exec/serial.yaml", "exec/parallel.yaml"}) {
    EXPECT_NO_THROW((void)of::config::load_yaml_file(dir + "/" + rel)) << rel;
  }
}

TEST(Configs, QuickstartComposesAndBuildsEngine) {
  const std::string dir = OF_CONFIGS_DIR;
  ConfigNode cfg = of::config::compose(dir + "/quickstart.yaml",
                                       {"algorithm.global_rounds=1",
                                        "datamodule.preset=toy", "model.name=mlp_tiny",
                                        "topology.num_clients=3"});
  Engine engine(std::move(cfg));
  const RunResult r = engine.run();
  EXPECT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.model, "mlp_tiny");
}

TEST(Configs, CrossFacilityComposes) {
  const std::string dir = OF_CONFIGS_DIR;
  ConfigNode cfg = of::config::compose(dir + "/cross_facility.yaml",
                                       {"algorithm.global_rounds=1",
                                        "datamodule.preset=toy", "model.name=mlp_tiny",
                                        "topology.groups=2", "topology.group_size=2"});
  Engine engine(std::move(cfg));
  const RunResult r = engine.run();
  EXPECT_EQ(r.rounds.size(), 1u);
  EXPECT_GT(r.outer_comm.bytes_sent, 0u);
}

}  // namespace
