// of::exec pool tests: chunk coverage, the determinism invariant (bitwise
// identical results for threads=1 and threads=N), exception propagation,
// nested regions, and concurrent callers (the TSan presets run this file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "config/yaml.hpp"
#include "exec/pool.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using of::exec::ExecConfig;
using of::exec::Pool;
using of::tensor::Rng;
using of::tensor::Tensor;

// Every test leaves the global pool serial so test order cannot matter.
struct PoolGuard {
  ~PoolGuard() { Pool::global().configure(1); }
};

std::vector<float> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian(0.0, 1.0));
  return v;
}

TEST(ExecConfig, FromConfigParsesThreadsAndGrain) {
  const auto node = of::config::parse_yaml("threads: 3\ngrain: 128\n");
  const auto cfg = ExecConfig::from_config(node);
  EXPECT_EQ(cfg.threads, 3u);
  EXPECT_EQ(cfg.grain, 128u);
}

TEST(ExecConfig, DefaultsAreSerial) {
  const auto cfg = ExecConfig::from_config(of::config::ConfigNode::map());
  EXPECT_EQ(cfg.threads, 1u);
  EXPECT_EQ(cfg.grain, 4096u);
}

TEST(ExecPool, RunChunksCoversRangeExactlyOnce) {
  PoolGuard guard;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Pool::global().configure(threads);
    const std::size_t n = 10'001;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    Pool::global().run_chunks(n, 97, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with threads=" << threads;
  }
}

TEST(ExecPool, ChunkIndicesMatchFixedDecomposition) {
  PoolGuard guard;
  Pool::global().configure(4);
  const std::size_t n = 1000, grain = 128;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks);
  Pool::global().run_chunks(n, grain, [&](std::size_t c, std::size_t b, std::size_t e) {
    ranges[c] = {b, e};
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, c * grain);
    EXPECT_EQ(ranges[c].second, std::min(n, (c + 1) * grain));
  }
}

TEST(ExecPool, EmptyRangeAndOversizedGrain) {
  PoolGuard guard;
  Pool::global().configure(4);
  int calls = 0;
  Pool::global().run_chunks(0, 16, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  Pool::global().run_chunks(5, 1'000'000, [&](std::size_t c, std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(c, 0u);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ExecPool, ReduceBitwiseIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const auto values = random_values(1 << 18, 0xC0FFEE);
  const auto partial = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += static_cast<double>(values[i]);
    return acc;
  };
  const auto combine = [](double a, double b) { return a + b; };

  Pool::global().configure(1);
  const float serial = static_cast<float>(Pool::global().parallel_reduce(
      values.size(), 4096, 0.0, partial, combine));
  Pool::global().configure(4);
  const float parallel = static_cast<float>(Pool::global().parallel_reduce(
      values.size(), 4096, 0.0, partial, combine));

  std::uint32_t sbits = 0, pbits = 0;
  std::memcpy(&sbits, &serial, sizeof(sbits));
  std::memcpy(&pbits, &parallel, sizeof(pbits));
  EXPECT_EQ(sbits, pbits);
}

TEST(ExecPool, TensorKernelsBitwiseIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(42);
  const Tensor a = Tensor::randn({64, 512}, rng);
  const Tensor b = Tensor::randn({512, 96}, rng);
  const Tensor big = Tensor::randn({1 << 16}, rng);

  Pool::global().configure(1);
  const Tensor mm1 = a.matmul(b);
  const Tensor t1 = a.transpose2d();
  const float s1 = big.sum();
  const float n1 = big.l2_norm_squared();
  const float d1 = big.dot(big);

  Pool::global().configure(4);
  const Tensor mm4 = a.matmul(b);
  const Tensor t4 = a.transpose2d();
  const float s4 = big.sum();
  const float n4 = big.l2_norm_squared();
  const float d4 = big.dot(big);

  ASSERT_EQ(mm1.numel(), mm4.numel());
  EXPECT_EQ(std::memcmp(mm1.data(), mm4.data(), mm1.numel() * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(t1.data(), t4.data(), t1.numel() * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&s1, &s4, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&n1, &n4, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&d1, &d4, sizeof(float)), 0);
}

TEST(ExecPool, ExceptionPropagatesAndPoolSurvives) {
  PoolGuard guard;
  Pool::global().configure(4);
  EXPECT_THROW(
      Pool::global().run_chunks(1000, 10,
                                [&](std::size_t c, std::size_t, std::size_t) {
                                  if (c == 3) throw std::runtime_error("chunk 3 failed");
                                }),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<std::size_t> covered{0};
  Pool::global().parallel_for(128, 8, [&](std::size_t b, std::size_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 128u);
}

TEST(ExecPool, NestedRegionsRunInline) {
  PoolGuard guard;
  Pool::global().configure(4);
  std::atomic<std::size_t> inner_total{0};
  Pool::global().parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    EXPECT_TRUE(Pool::in_parallel_region());
    for (std::size_t i = b; i < e; ++i) {
      // Must not deadlock and must still cover its range.
      Pool::global().parallel_for(100, 10, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 800u);
  EXPECT_FALSE(Pool::in_parallel_region());
}

TEST(ExecPool, ConcurrentCallersShareThePool) {
  PoolGuard guard;
  Pool::global().configure(4);
  // Several node threads submitting regions at once — the shape the Engine
  // produces, and the scenario the TSan preset checks for races.
  constexpr int kCallers = 4;
  std::vector<std::vector<float>> results(kCallers);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &results] {
      const auto values = random_values(1 << 15, 77 + static_cast<std::uint64_t>(t));
      results[static_cast<std::size_t>(t)].assign(values.size(), 0.0f);
      auto& out = results[static_cast<std::size_t>(t)];
      for (int rep = 0; rep < 10; ++rep) {
        Pool::global().parallel_for(values.size(), 512, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) out[i] = values[i] * 2.0f;
        });
      }
    });
  }
  for (auto& c : callers) c.join();
  for (int t = 0; t < kCallers; ++t) {
    const auto values = random_values(1 << 15, 77 + static_cast<std::uint64_t>(t));
    for (std::size_t i = 0; i < values.size(); ++i)
      ASSERT_EQ(results[static_cast<std::size_t>(t)][i], values[i] * 2.0f);
  }
}

TEST(ExecPool, ConfigureZeroMeansHardwareConcurrency) {
  PoolGuard guard;
  Pool::global().configure(0);
  EXPECT_GE(Pool::global().threads(), 1u);
}

}  // namespace
