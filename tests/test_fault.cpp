// Fault-model tests: spec parsing/validation, deterministic injection,
// deadline-based partial gather, and end-to-end faulty Engine runs.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "comm/inproc.hpp"
#include "comm/star.hpp"
#include "net_util.hpp"
#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "fault/fault.hpp"

namespace {

using of::comm::Communicator;
using of::comm::InProcGroup;
using of::config::ConfigNode;
using of::config::parse_yaml;
using of::core::Engine;
using of::core::RunResult;
using of::fault::FaultInjector;
using of::fault::FaultKind;
using of::fault::FaultSpec;
using of::tensor::Bytes;

namespace star = of::comm::star;

// --- FaultSpec parsing ---------------------------------------------------------------

TEST(FaultSpec, NullNodeYieldsDisabledSpec) {
  const FaultSpec s = FaultSpec::from_config(ConfigNode());
  EXPECT_FALSE(s.enabled);
  EXPECT_TRUE(s.injections.empty());
}

TEST(FaultSpec, ParsesFullGroup) {
  const ConfigNode n = parse_yaml(R"(
enabled: true
min_clients: 2
round_deadline_seconds: 1.5
quorum_timeout_seconds: 12.0
reconnect:
  max_attempts: 5
  backoff_seconds: 0.01
  backoff_max_seconds: 0.2
injections:
  - kind: crash
    client: 1
    round: 2
  - kind: delay
    probability: 0.5
    delay_seconds: 0.3
  - kind: disconnect
    client: 2
)");
  const FaultSpec s = FaultSpec::from_config(n);
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.min_clients, 2);
  EXPECT_DOUBLE_EQ(s.round_deadline_seconds, 1.5);
  EXPECT_DOUBLE_EQ(s.quorum_timeout_seconds, 12.0);
  EXPECT_EQ(s.reconnect.max_attempts, 5);
  EXPECT_DOUBLE_EQ(s.reconnect.backoff_seconds, 0.01);
  EXPECT_DOUBLE_EQ(s.reconnect.backoff_max_seconds, 0.2);
  ASSERT_EQ(s.injections.size(), 3u);
  EXPECT_EQ(s.injections[0].kind, FaultKind::Crash);
  EXPECT_EQ(s.injections[0].client, 1);
  EXPECT_EQ(s.injections[0].round, 2);
  EXPECT_DOUBLE_EQ(s.injections[0].probability, 1.0);
  EXPECT_EQ(s.injections[1].kind, FaultKind::Delay);
  EXPECT_EQ(s.injections[1].client, -1);  // any client
  EXPECT_EQ(s.injections[1].round, -1);   // every round
  EXPECT_DOUBLE_EQ(s.injections[1].probability, 0.5);
  EXPECT_DOUBLE_EQ(s.injections[1].delay_seconds, 0.3);
  EXPECT_EQ(s.injections[2].kind, FaultKind::Disconnect);
  EXPECT_EQ(s.injections[2].client, 2);
}

TEST(FaultSpec, RejectsOutOfRangeValues) {
  EXPECT_THROW((void)FaultSpec::from_config(parse_yaml(R"(
injections:
  - kind: crash
    probability: 1.5
)")),
               std::runtime_error);
  EXPECT_THROW((void)FaultSpec::from_config(parse_yaml("injections:\n  - kind: meltdown\n")),
               std::runtime_error);
  EXPECT_THROW((void)FaultSpec::from_config(parse_yaml(
                   "round_deadline_seconds: 1.0\nquorum_timeout_seconds: 0.5\n")),
               std::runtime_error);
}

TEST(FaultSpec, ValidateChecksQuorumAndTargets) {
  FaultSpec s;
  s.enabled = true;
  s.min_clients = 3;
  EXPECT_NO_THROW(s.validate(4));  // 3 clients in a world of 4
  s.min_clients = 4;
  EXPECT_THROW(s.validate(4), std::runtime_error);
  s.min_clients = 1;
  s.injections.push_back({FaultKind::Crash, 9, -1, 1.0, 0.0});
  EXPECT_THROW(s.validate(4), std::runtime_error);
}

TEST(FaultSpec, ShippedCrashOneGroupFileParses) {
  const std::string dir = OF_CONFIGS_DIR;
  const FaultSpec s =
      FaultSpec::from_config(of::config::load_yaml_file(dir + "/fault/crash_one.yaml"));
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.min_clients, 2);
  ASSERT_EQ(s.injections.size(), 1u);
  EXPECT_EQ(s.injections[0].kind, FaultKind::Crash);
  EXPECT_EQ(s.injections[0].client, 1);
  EXPECT_EQ(s.injections[0].round, 1);
}

// --- FaultInjector ---------------------------------------------------------------------

TEST(FaultInjector, TargetedCrashFiresExactlyOnce) {
  FaultSpec s;
  s.enabled = true;
  s.injections.push_back({FaultKind::Crash, 1, 2, 1.0, 0.0});
  FaultInjector hit(s, 1, 42);
  FaultInjector miss(s, 2, 42);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(hit.at_round(r).crash, r == 2) << "round " << r;
    EXPECT_FALSE(miss.at_round(r).crash) << "round " << r;
  }
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultSpec s;
  s.enabled = true;
  s.injections.push_back({FaultKind::Delay, -1, -1, 0.5, 0.1});
  s.injections.push_back({FaultKind::Disconnect, -1, -1, 0.3, 0.0});
  FaultInjector a(s, 1, 7);
  FaultInjector b(s, 1, 7);
  FaultInjector other_client(s, 2, 7);
  bool streams_differ = false;
  for (int r = 0; r < 64; ++r) {
    const auto da = a.at_round(r);
    const auto db = b.at_round(r);
    const auto dc = other_client.at_round(r);
    EXPECT_DOUBLE_EQ(da.extra_delay_seconds, db.extra_delay_seconds);
    EXPECT_EQ(da.disconnect, db.disconnect);
    if (da.extra_delay_seconds != dc.extra_delay_seconds || da.disconnect != dc.disconnect)
      streams_differ = true;
  }
  EXPECT_TRUE(streams_differ);  // per-client streams are decorrelated
}

TEST(FaultInjector, DisabledSpecNeverFires) {
  FaultSpec s;  // enabled = false
  s.injections.push_back({FaultKind::Crash, -1, -1, 1.0, 0.0});
  FaultInjector inj(s, 1, 7);
  for (int r = 0; r < 8; ++r) {
    const auto d = inj.at_round(r);
    EXPECT_FALSE(d.crash);
    EXPECT_FALSE(d.disconnect);
    EXPECT_DOUBLE_EQ(d.extra_delay_seconds, 0.0);
  }
}

// --- deadline-based partial gather -----------------------------------------------------

void run_group(int world, const std::function<void(int, Communicator&)>& fn) {
  InProcGroup group(world);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, group.comm(r));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

TEST(PartialGather, AllClientsArriveBeforeDeadline) {
  run_group(3, [](int rank, Communicator& c) {
    star::PartialGatherOptions opt{2, 5.0, 10.0};
    const auto out =
        star::gather_bytes_partial(c, Bytes{static_cast<std::uint8_t>(rank)}, opt);
    if (rank == 0) {
      EXPECT_EQ(out.participated, (std::vector<int>{1, 2}));
      EXPECT_TRUE(out.dropped.empty());
      EXPECT_FALSE(out.deadline_hit);
      ASSERT_EQ(out.frames.size(), 3u);
      for (std::uint8_t p = 0; p < 3; ++p)
        EXPECT_EQ(out.frames[p], Bytes{p}) << "rank " << int(p);
    } else {
      EXPECT_TRUE(out.frames.empty());  // clients only send
    }
  });
}

TEST(PartialGather, StragglerPastDeadlineIsDropped) {
  run_group(3, [](int rank, Communicator& c) {
    star::PartialGatherOptions opt{1, 0.15, 0.15};
    if (rank == 2) std::this_thread::sleep_for(std::chrono::milliseconds(600));
    const auto out =
        star::gather_bytes_partial(c, Bytes{static_cast<std::uint8_t>(rank)}, opt);
    if (rank == 0) {
      EXPECT_EQ(out.participated, (std::vector<int>{1}));
      EXPECT_EQ(out.dropped, (std::vector<int>{2}));
      EXPECT_TRUE(out.deadline_hit);
    }
  });
}

TEST(PartialGather, QuorumOutwaitsTheDeadline) {
  run_group(3, [](int rank, Communicator& c) {
    star::PartialGatherOptions opt{2, 0.05, 10.0};
    if (rank == 2) std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const auto out =
        star::gather_bytes_partial(c, Bytes{static_cast<std::uint8_t>(rank)}, opt);
    if (rank == 0) {
      // The deadline passed with one report, but quorum=2 keeps the hub
      // waiting until the straggler lands.
      EXPECT_EQ(out.participated, (std::vector<int>{1, 2}));
      EXPECT_TRUE(out.dropped.empty());
      EXPECT_TRUE(out.deadline_hit);
    }
  });
}

TEST(PartialGather, MissedQuorumTimesOutWithReadableError) {
  EXPECT_THROW(
      run_group(3,
                [](int rank, Communicator& c) {
                  star::PartialGatherOptions opt{2, 0.05, 0.25};
                  if (rank == 2)
                    std::this_thread::sleep_for(std::chrono::seconds(1));
                  (void)star::gather_bytes_partial(
                      c, Bytes{static_cast<std::uint8_t>(rank)}, opt);
                }),
      std::runtime_error);
}

// --- faulty Engine runs ----------------------------------------------------------------

ConfigNode faulty_config(const std::string& fault_block) {
  return parse_yaml(R"(seed: 7
topology:
  _target_: CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: FedAvg
  global_rounds: 3
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
)" + fault_block);
}

constexpr const char* kCrashBlock = R"(fault:
  enabled: true
  min_clients: 1
  round_deadline_seconds: 0.3
  injections:
    - kind: crash
      client: 1
      round: 1
)";

TEST(EngineFault, CrashWithQuorumCompletesAllRounds) {
  Engine engine(faulty_config(kCrashBlock));
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_EQ(r.rounds[0].participated, 4u);
  EXPECT_TRUE(r.rounds[0].dropped_ranks.empty());
  for (std::size_t round : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_EQ(r.rounds[round].participated, 3u) << "round " << round;
    EXPECT_EQ(r.rounds[round].dropped_ranks, (std::vector<int>{1})) << "round " << round;
    EXPECT_TRUE(r.rounds[round].deadline_hit) << "round " << round;
  }
  EXPECT_GT(r.final_accuracy, 0.5f);

  // Telemetry reaches the CSV export.
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("participated,dropped,deadline_hit,reconnects"), std::string::npos);

  // Losing one of four clients must not wreck convergence on the toy task.
  Engine clean(faulty_config(""));
  const RunResult cr = clean.run();
  EXPECT_NEAR(r.final_accuracy, cr.final_accuracy, 0.15f);
}

TEST(EngineFault, CrashOverTcpBackend) {
  ConfigNode cfg = faulty_config(kCrashBlock);
  cfg.set_path("topology.inner_comm._target_", ConfigNode::string("GrpcCommunicator"));
  cfg.set_path("topology.inner_comm.port", ConfigNode::integer(of::testutil::ephemeral_port()));
  cfg.set_path("fault.round_deadline_seconds", ConfigNode::floating(1.0));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_EQ(r.rounds[1].dropped_ranks, (std::vector<int>{1}));
  // Round 2: the transport already knows the peer is dead, so it is dropped
  // up front instead of being outwaited.
  EXPECT_EQ(r.rounds[2].participated, 3u);
  EXPECT_FALSE(r.rounds[2].deadline_hit);
  EXPECT_GT(r.final_accuracy, 0.4f);
}

TEST(EngineFault, TransientDisconnectComesBackNextRound) {
  Engine engine(faulty_config(R"(fault:
  enabled: true
  min_clients: 1
  round_deadline_seconds: 0.3
  injections:
    - kind: disconnect
      client: 3
      round: 0
)"));
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  // Over a backend with no severable link the outage is a deadline-length
  // stall: client 3 misses round 0 only.
  EXPECT_EQ(r.rounds[0].dropped_ranks, (std::vector<int>{3}));
  EXPECT_TRUE(r.rounds[0].deadline_hit);
  EXPECT_EQ(r.rounds[1].participated, 4u);
  EXPECT_TRUE(r.rounds[1].dropped_ranks.empty());
}

TEST(EngineFault, DelaySpikesAreOutwaitedOrDropped) {
  Engine engine(faulty_config(R"(fault:
  enabled: true
  min_clients: 1
  round_deadline_seconds: 0.2
  injections:
    - kind: delay
      client: 2
      delay_seconds: 0.5
)"));
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.dropped_ranks, (std::vector<int>{2})) << "round " << rec.round;
    EXPECT_TRUE(rec.deadline_hit) << "round " << rec.round;
    EXPECT_EQ(rec.participated, 3u) << "round " << rec.round;
  }
  EXPECT_GT(r.final_accuracy, 0.4f);
}

TEST(EngineFault, RejectsIncompatibleConfigurations) {
  {
    ConfigNode cfg = faulty_config(kCrashBlock);
    cfg.set_path("topology._target_", ConfigNode::string("RingTopology"));
    cfg.set_path("topology.num_nodes", ConfigNode::integer(4));
    Engine engine(cfg);
    EXPECT_THROW((void)engine.run(), std::runtime_error);
  }
  {
    ConfigNode cfg = faulty_config(kCrashBlock);
    cfg.set_path("scheduling.mode", ConfigNode::string("async"));
    Engine engine(cfg);
    EXPECT_THROW((void)engine.run(), std::runtime_error);
  }
  {
    ConfigNode cfg = faulty_config(kCrashBlock);
    cfg.set_path("privacy._target_", ConfigNode::string("SecureAggregation"));
    Engine engine(cfg);
    EXPECT_THROW((void)engine.run(), std::runtime_error);
  }
}

}  // namespace
