#include <gtest/gtest.h>

#include <cmath>

#include "nn/checkpoint.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/zoo.hpp"

namespace {

using of::nn::Model;
using of::nn::Module;
using of::nn::Parameter;
using of::tensor::Rng;
using of::tensor::Tensor;

// Scalar loss L = Σ (weights ⊙ module(x)); returns L and drives backward.
float weighted_loss_and_backward(Module& m, const Tensor& x, const Tensor& weights,
                                 Tensor* dx_out = nullptr) {
  const Tensor y = m.forward(x);
  float loss = y.dot(weights);
  Tensor dx = m.backward(weights);
  if (dx_out) *dx_out = dx;
  return loss;
}

float weighted_loss_only(Module& m, const Tensor& x, const Tensor& weights) {
  return m.forward(x).dot(weights);
}

// Central-difference gradient check against the analytic backward pass, for
// both inputs and every parameter of the module.
void check_gradients(Module& m, std::size_t in_dim, std::size_t batch, Rng& rng,
                     float tol = 2e-2f) {
  const Tensor x = Tensor::randn({batch, in_dim}, rng);
  const Tensor probe = m.forward(x);
  const Tensor weights = Tensor::randn(probe.shape(), rng);

  std::vector<Parameter*> params;
  m.collect_parameters(params);
  for (auto* p : params) p->grad.zero_();

  Tensor dx;
  (void)weighted_loss_and_backward(m, x, weights, &dx);

  const float eps = 1e-3f;
  // Input gradient.
  for (std::size_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float lp = weighted_loss_only(m, xp, weights);
    const float lm = weighted_loss_only(m, xm, weights);
    const float num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], num, tol * std::max(1.0f, std::fabs(num)))
        << "input grad mismatch at " << i << " in " << m.name();
  }
  // Parameter gradients (a subsample for large layers).
  for (auto* p : params) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.numel() / 16);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = weighted_loss_only(m, x, weights);
      p->value[i] = orig - eps;
      const float lm = weighted_loss_only(m, x, weights);
      p->value[i] = orig;
      const float num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0f, std::fabs(num)))
          << "param grad mismatch in " << p->name << '[' << i << ']';
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  of::nn::Linear layer(5, 4, rng);
  check_gradients(layer, 5, 3, rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(2);
  of::nn::ReLU layer;
  check_gradients(layer, 6, 2, rng);
}

TEST(GradCheck, Tanh) {
  Rng rng(3);
  of::nn::Tanh layer;
  check_gradients(layer, 4, 3, rng);
}

TEST(GradCheck, HardSwish) {
  Rng rng(4);
  of::nn::HardSwish layer;
  check_gradients(layer, 6, 3, rng);
}

TEST(GradCheck, BatchNormTrainingMode) {
  Rng rng(5);
  of::nn::BatchNorm1d layer(4);
  // BatchNorm's batch statistics change with perturbed inputs — the
  // analytic backward accounts for that, which is exactly what we check.
  check_gradients(layer, 4, 6, rng, 5e-2f);
}

TEST(GradCheck, BatchNormEvalMode) {
  Rng rng(6);
  of::nn::BatchNorm1d layer(4);
  // Prime running stats, then check gradients in eval mode.
  Tensor warm = Tensor::randn({8, 4}, rng);
  (void)layer.forward(warm);
  layer.set_training(false);
  check_gradients(layer, 4, 3, rng);
}

TEST(GradCheck, ResidualBlock) {
  Rng rng(7);
  of::nn::ResidualBlock layer(6, rng);
  check_gradients(layer, 6, 4, rng, 5e-2f);
}

TEST(GradCheck, SequentialStack) {
  Rng rng(8);
  of::nn::Sequential seq;
  seq.emplace<of::nn::Linear>(5, 8, rng);
  seq.emplace<of::nn::Tanh>();
  seq.emplace<of::nn::Linear>(8, 3, rng);
  check_gradients(seq, 5, 2, rng);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(9);
  const Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<std::size_t> labels{1, 4, 0};
  const auto lg = of::nn::softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float num = (of::nn::softmax_cross_entropy(lp, labels).loss -
                       of::nn::softmax_cross_entropy(lm, labels).loss) /
                      (2 * eps);
    EXPECT_NEAR(lg.grad[i], num, 1e-2f);
  }
}

// --- loss semantics -----------------------------------------------------------

TEST(Loss, SoftmaxRowsSumToOne) {
  Rng rng(10);
  const Tensor p = of::nn::softmax(Tensor::randn({4, 7}, rng));
  for (std::size_t r = 0; r < 4; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) s += p(r, c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Loss, CrossEntropyOfPerfectPrediction) {
  Tensor logits({1, 3}, std::vector<float>{100.0f, 0.0f, 0.0f});
  const auto lg = of::nn::softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(lg.loss, 0.0f, 1e-4f);
}

TEST(Loss, CrossEntropyOfUniformIsLogK) {
  Tensor logits({1, 4});
  const auto lg = of::nn::softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(lg.loss, std::log(4.0f), 1e-5f);
}

TEST(Loss, BadLabelThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(of::nn::softmax_cross_entropy(logits, {3}), std::runtime_error);
}

TEST(Loss, Accuracy) {
  Tensor logits({2, 2}, std::vector<float>{1, 0, 0, 1});
  EXPECT_FLOAT_EQ(of::nn::accuracy(logits, {0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(of::nn::accuracy(logits, {1, 1}), 0.5f);
}

TEST(Loss, MseZeroAtTarget) {
  Rng rng(11);
  const Tensor t = Tensor::randn({5}, rng);
  const auto lg = of::nn::mse_loss(t, t);
  EXPECT_FLOAT_EQ(lg.loss, 0.0f);
}

// --- Dropout -------------------------------------------------------------------

TEST(Dropout, EvalIsIdentity) {
  of::nn::Dropout d(0.5f, 99);
  d.set_training(false);
  Rng rng(12);
  const Tensor x = Tensor::randn({3, 4}, rng);
  EXPECT_TRUE(d.forward(x).allclose(x, 0.0f, 0.0f));
}

TEST(Dropout, TrainZeroesRoughlyPFraction) {
  of::nn::Dropout d(0.25f, 99);
  const Tensor x = Tensor::ones({10000});
  const Tensor y = d.forward(x);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.03);
  // Surviving units are scaled by 1/(1-p).
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] != 0.0f) EXPECT_FLOAT_EQ(y[i], 1.0f / 0.75f);
}

TEST(Dropout, BackwardUsesSameMask) {
  of::nn::Dropout d(0.5f, 7);
  const Tensor x = Tensor::ones({100});
  const Tensor y = d.forward(x);
  const Tensor g = d.backward(Tensor::ones({100}));
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(g[i], y[i]);
}

// --- BatchNorm statistics -------------------------------------------------------

TEST(BatchNorm, NormalizesBatch) {
  Rng rng(13);
  of::nn::BatchNorm1d bn(3);
  const Tensor x = Tensor::randn({64, 3}, rng, 5.0f, 3.0f);
  const Tensor y = bn.forward(x);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t b = 0; b < 64; ++b) mean += y(b, j);
    mean /= 64;
    for (std::size_t b = 0; b < 64; ++b) var += (y(b, j) - mean) * (y(b, j) - mean);
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConverge) {
  Rng rng(14);
  of::nn::BatchNorm1d bn(2, /*momentum=*/0.5f);
  for (int i = 0; i < 32; ++i) (void)bn.forward(Tensor::randn({128, 2}, rng, 2.0f, 1.0f));
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f, 0.2f);
}

TEST(BatchNorm, RunningVarUsesUnbiasedEstimate) {
  // Golden check against the torch.nn.BatchNorm1d convention: the EMA tracks
  // the *unbiased* batch variance (n/(n-1) correction) even though the
  // normalization itself uses the biased one. Mirrors the exact float casts.
  of::nn::BatchNorm1d bn(1, /*momentum=*/0.1f);
  const Tensor x = Tensor::from_vector({1.0f, 2.0f, 3.0f, 6.0f}).reshape({4, 1});
  (void)bn.forward(x);

  const double mean = (1.0 + 2.0 + 3.0 + 6.0) / 4.0;  // 3.0
  double var = 0.0;
  for (const double v : {1.0, 2.0, 3.0, 6.0}) var += (v - mean) * (v - mean);
  var /= 4.0;                                 // biased: 3.5
  const double unbiased = var * 4.0 / 3.0;    // unbiased: 14/3
  const float expect_mean = 0.9f * 0.0f + 0.1f * static_cast<float>(mean);
  const float expect_var = 0.9f * 1.0f + 0.1f * static_cast<float>(unbiased);
  EXPECT_FLOAT_EQ(bn.running_mean()[0], expect_mean);
  EXPECT_FLOAT_EQ(bn.running_var()[0], expect_var);
}

TEST(BatchNorm, ParamsTaggedForFedBN) {
  Rng rng(15);
  of::nn::BatchNorm1d bn(2);
  std::vector<Parameter*> ps;
  bn.collect_parameters(ps);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_TRUE(ps[0]->is_batchnorm);
  EXPECT_TRUE(ps[1]->is_batchnorm);
}

// --- optimizers -----------------------------------------------------------------

TEST(Optimizer, SgdPlainStep) {
  Parameter p("w", Tensor::from_vector({1.0f}));
  p.grad[0] = 0.5f;
  of::nn::SGD opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(Optimizer, SgdWeightDecay) {
  Parameter p("w", Tensor::from_vector({2.0f}));
  of::nn::SGD opt({&p}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  opt.step();  // grad = 0 + 0.5*2 = 1 → w -= 0.1
  EXPECT_FLOAT_EQ(p.value[0], 1.9f);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Parameter p("w", Tensor::from_vector({0.0f}));
  of::nn::SGD opt({&p}, 1.0f, /*momentum=*/0.9f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1.9, w=-2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(Optimizer, ZeroGradClears) {
  Parameter p("w", Tensor::from_vector({0.0f}));
  p.grad[0] = 3.0f;
  of::nn::SGD opt({&p}, 0.1f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // minimize f(w) = (w-3)²
  Parameter p("w", Tensor::from_vector({0.0f}));
  of::nn::Adam opt({&p}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Optimizer, AdamWDecayIsDecoupled) {
  // With zero gradient AdamW still shrinks weights; classic Adam with
  // L2 coupling moves them through the moment estimates instead.
  Parameter p("w", Tensor::from_vector({1.0f}));
  of::nn::AdamW opt({&p}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  p.grad[0] = 0.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f * 0.1f * 1.0f, 1e-6f);
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  Parameter p("w", Tensor::from_vector({-4.0f}));
  of::nn::SGD opt({&p}, 0.1f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 1.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 1.0f, 0.05f);
}

TEST(Scheduler, MultiStepDecays) {
  Parameter p("w", Tensor::from_vector({0.0f}));
  of::nn::SGD opt({&p}, 1.0f);
  of::nn::MultiStepLR sched(opt, {2, 4}, 0.1f);
  sched.on_epoch(0);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  sched.on_epoch(2);
  EXPECT_FLOAT_EQ(opt.lr(), 0.1f);
  sched.on_epoch(4);
  EXPECT_NEAR(opt.lr(), 0.01f, 1e-7f);
  sched.on_epoch(1);  // going back re-derives from the base LR
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
}

TEST(Scheduler, StepLrDecays) {
  Parameter p("w", Tensor::from_vector({0.0f}));
  of::nn::SGD opt({&p}, 0.8f);
  of::nn::StepLR sched(opt, 3, 0.5f);
  sched.on_epoch(2);
  EXPECT_FLOAT_EQ(opt.lr(), 0.8f);
  sched.on_epoch(3);
  EXPECT_FLOAT_EQ(opt.lr(), 0.4f);
  sched.on_epoch(7);
  EXPECT_FLOAT_EQ(opt.lr(), 0.2f);
}

// --- Model + zoo -----------------------------------------------------------------

TEST(Model, FlatParameterRoundtrip) {
  Model m = of::nn::zoo::make_model("mlp_tiny", 8, 3, 1);
  const Tensor flat = m.flat_parameters();
  EXPECT_EQ(flat.numel(), m.num_scalars());
  Tensor changed = flat;
  changed.scale_(2.0f);
  m.set_flat_parameters(changed);
  EXPECT_TRUE(m.flat_parameters().allclose(changed, 0.0f, 0.0f));
}

TEST(Model, SameSeedSameInit) {
  Model a = of::nn::zoo::make_model("resnet18_mini", 16, 4, 99);
  Model b = of::nn::zoo::make_model("resnet18_mini", 16, 4, 99);
  EXPECT_TRUE(a.flat_parameters().allclose(b.flat_parameters(), 0.0f, 0.0f));
}

TEST(Model, DifferentSeedDifferentInit) {
  Model a = of::nn::zoo::make_model("mlp_tiny", 16, 4, 1);
  Model b = of::nn::zoo::make_model("mlp_tiny", 16, 4, 2);
  EXPECT_FALSE(a.flat_parameters().allclose(b.flat_parameters()));
}

TEST(Model, CloneIsDeepAndFaithful) {
  Rng rng(16);
  Model a = of::nn::zoo::make_model("resnet18_mini", 16, 4, 5);
  (void)a.forward(Tensor::randn({8, 16}, rng));  // move BN running stats
  Model b = a.clone();
  EXPECT_TRUE(a.flat_parameters().allclose(b.flat_parameters(), 0.0f, 0.0f));
  // Mutating the clone leaves the original untouched.
  Tensor flat = b.flat_parameters();
  flat.scale_(0.0f);
  b.set_flat_parameters(flat);
  EXPECT_GT(a.flat_parameters().l2_norm(), 0.0f);
  // Buffers copied too.
  a.set_training(false);
  Model c = a.clone();
  c.set_training(false);
  Rng rng2(17);
  const Tensor x = Tensor::randn({4, 16}, rng2);
  EXPECT_TRUE(a.forward(x).allclose(c.forward(x), 1e-5f, 1e-5f));
}

TEST(Model, FeaturesMatchManualSplit) {
  Model m = of::nn::zoo::make_model("mlp_tiny", 8, 3, 11);
  Rng rng(18);
  const Tensor x = Tensor::randn({2, 8}, rng);
  const Tensor z = m.features(x);
  EXPECT_EQ(z.size(1), 32u);  // hidden width of mlp_tiny
}

TEST(Zoo, AllModelsForwardAndBackward) {
  Rng rng(19);
  for (const auto& name : of::nn::zoo::model_names()) {
    // 64 = 8×8 so the convolutional model can interpret it as an image.
    Model m = of::nn::zoo::make_model(name, 64, 5, 3);
    const Tensor x = Tensor::randn({4, 64}, rng);
    const Tensor y = m.forward(x);
    EXPECT_EQ(y.size(1), 5u) << name;
    const auto lg = of::nn::softmax_cross_entropy(y, {0, 1, 2, 3});
    m.zero_grad();
    m.backward(lg.grad);
    EXPECT_GT(m.flat_gradients().l2_norm(), 0.0f) << name;
  }
}

TEST(Zoo, ParameterCountOrderingMatchesPaper) {
  // Table 3b cost ordering requires VGG > Alex > Res > Mob.
  auto scalars = [](const char* n) {
    Model m = of::nn::zoo::make_model(n, 64, 10, 1);
    return m.num_scalars();
  };
  const auto vgg = scalars("vgg11_mini");
  const auto alex = scalars("alexnet_mini");
  const auto res = scalars("resnet18_mini");
  const auto mob = scalars("mobilenetv3_mini");
  EXPECT_GT(vgg, alex);
  EXPECT_GT(alex, res);
  EXPECT_GT(res, mob);
}

TEST(Zoo, HeadParametersTagged) {
  Model m = of::nn::zoo::make_model("vgg11_mini", 16, 4, 1);
  std::size_t head = 0, base = 0;
  for (auto* p : m.parameters()) (p->is_head ? head : base) += 1;
  EXPECT_EQ(head, 2u);  // weight + bias of the head Linear
  EXPECT_GT(base, 0u);
}

TEST(Zoo, UnknownModelThrows) {
  EXPECT_THROW(of::nn::zoo::make_model("resnet152", 8, 2, 1), std::runtime_error);
}

// --- convolutional layers ---------------------------------------------------------

TEST(GradCheck, Conv2dWithPadding) {
  Rng rng(50);
  of::nn::Conv2d layer({2, 5, 5}, 3, 3, 1, rng);
  check_gradients(layer, 2 * 5 * 5, 2, rng, 3e-2f);
}

TEST(GradCheck, Conv2dNoPadding) {
  Rng rng(51);
  of::nn::Conv2d layer({1, 6, 6}, 2, 3, 0, rng);
  check_gradients(layer, 36, 2, rng, 3e-2f);
}

TEST(GradCheck, MaxPool2d) {
  Rng rng(52);
  of::nn::MaxPool2d layer({2, 6, 6});
  check_gradients(layer, 72, 2, rng);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(53);
  of::nn::LayerNorm layer(10);
  check_gradients(layer, 10, 3, rng, 5e-2f);
}

TEST(Conv2d, KnownValueIdentityKernel) {
  // A single 1×1 kernel with weight 1, bias 0 is the identity map.
  Rng rng(54);
  of::nn::Conv2d layer({1, 3, 3}, 1, 1, 0, rng);
  std::vector<of::nn::Parameter*> ps;
  layer.collect_parameters(ps);
  ps[0]->value.fill_(1.0f);
  ps[1]->value.fill_(0.0f);
  const Tensor x = Tensor::randn({2, 9}, rng);
  EXPECT_TRUE(layer.forward(x).allclose(x, 1e-6f, 1e-6f));
}

TEST(Conv2d, OutputGeometry) {
  Rng rng(55);
  of::nn::Conv2d same({3, 8, 8}, 16, 3, 1, rng);
  EXPECT_EQ(same.out_geom().height, 8u);
  EXPECT_EQ(same.out_geom().channels, 16u);
  of::nn::Conv2d valid({3, 8, 8}, 4, 3, 0, rng);
  EXPECT_EQ(valid.out_geom().height, 6u);
}

TEST(MaxPool2d, SelectsMaxima) {
  of::nn::MaxPool2d pool({1, 2, 2});
  Tensor x({1, 4}, std::vector<float>{1, 5, 2, 3});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  const Tensor g = pool.backward(Tensor::ones({1, 1}));
  EXPECT_FLOAT_EQ(g(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
}

TEST(LayerNorm, NormalizesEachRow) {
  Rng rng(56);
  of::nn::LayerNorm ln(16);
  const Tensor y = ln.forward(Tensor::randn({4, 16}, rng, 3.0f, 2.0f));
  for (std::size_t b = 0; b < 4; ++b) {
    double mean = 0.0;
    for (std::size_t j = 0; j < 16; ++j) mean += y(b, j);
    EXPECT_NEAR(mean / 16.0, 0.0, 1e-4);
  }
}

TEST(Zoo, CnnMiniTrainsOnImageLikeInput) {
  Model m = of::nn::zoo::make_model("cnn_mini", 64, 4, 9);
  Rng rng(57);
  Tensor x({32, 64});
  std::vector<std::size_t> y(32);
  for (std::size_t i = 0; i < 32; ++i) {
    y[i] = i % 4;
    for (std::size_t d = 0; d < 64; ++d)
      x(i, d) = static_cast<float>(rng.gaussian()) + 2.0f * static_cast<float>(y[i]);
  }
  of::nn::SGD opt(m.parameters(), 0.05f);
  float first = 0.0f, last = 0.0f;
  for (int epoch = 0; epoch < 15; ++epoch) {
    m.zero_grad();
    const auto lg = of::nn::softmax_cross_entropy(m.forward(x), y);
    m.backward(lg.grad);
    opt.step();
    if (epoch == 0) first = lg.loss;
    last = lg.loss;
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(Zoo, CnnMiniRejectsNonSquareInput) {
  EXPECT_THROW(of::nn::zoo::make_model("cnn_mini", 60, 4, 1), std::runtime_error);
}

// --- checkpointing ----------------------------------------------------------------

TEST(Checkpoint, RoundtripRestoresParamsAndBuffers) {
  Rng rng(40);
  Model a = of::nn::zoo::make_model("resnet18_mini", 16, 4, 9);
  (void)a.forward(Tensor::randn({8, 16}, rng));  // move BN running stats
  const auto blob = of::nn::save_checkpoint(a);

  Model b = of::nn::zoo::make_model("resnet18_mini", 16, 4, 777);  // different init
  of::nn::load_checkpoint(b, blob);
  EXPECT_TRUE(b.flat_parameters().allclose(a.flat_parameters(), 0.0f, 0.0f));
  a.set_training(false);
  b.set_training(false);
  Rng rng2(41);
  const Tensor x = Tensor::randn({4, 16}, rng2);
  EXPECT_TRUE(a.forward(x).allclose(b.forward(x), 1e-6f, 1e-6f));
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Model a = of::nn::zoo::make_model("mlp_tiny", 16, 4, 1);
  const auto blob = of::nn::save_checkpoint(a);
  Model wrong_arch = of::nn::zoo::make_model("vgg11_mini", 16, 4, 1);
  EXPECT_THROW(of::nn::load_checkpoint(wrong_arch, blob), std::runtime_error);
  Model wrong_dims = of::nn::zoo::make_model("mlp_tiny", 8, 4, 1);
  EXPECT_THROW(of::nn::load_checkpoint(wrong_dims, blob), std::runtime_error);
}

TEST(Checkpoint, RejectsCorruptBlob) {
  Model a = of::nn::zoo::make_model("mlp_tiny", 8, 2, 1);
  auto blob = of::nn::save_checkpoint(a);
  blob[0] ^= 0xFF;  // break the magic
  EXPECT_THROW(of::nn::load_checkpoint(a, blob), std::runtime_error);
  auto truncated = of::nn::save_checkpoint(a);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(of::nn::load_checkpoint(a, truncated), std::runtime_error);
}

TEST(Checkpoint, FileRoundtrip) {
  Model a = of::nn::zoo::make_model("mlp_tiny", 8, 2, 3);
  const std::string path = ::testing::TempDir() + "of_ckpt_test.bin";
  of::nn::save_checkpoint_file(a, path);
  Model b = of::nn::zoo::make_model("mlp_tiny", 8, 2, 99);
  of::nn::load_checkpoint_file(b, path);
  EXPECT_TRUE(b.flat_parameters().allclose(a.flat_parameters(), 0.0f, 0.0f));
  EXPECT_THROW(of::nn::load_checkpoint_file(b, path + ".missing"), std::runtime_error);
}

TEST(Zoo, TrainingReducesLoss) {
  // Single-node sanity: a few SGD epochs on a separable blob task.
  Model m = of::nn::zoo::make_model("mlp_tiny", 8, 2, 7);
  Rng rng(20);
  Tensor x({64, 8});
  std::vector<std::size_t> y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const bool pos = i % 2 == 0;
    y[i] = pos ? 1 : 0;
    for (std::size_t d = 0; d < 8; ++d)
      x(i, d) = static_cast<float>(rng.gaussian()) + (pos ? 2.0f : -2.0f);
  }
  of::nn::SGD opt(m.parameters(), 0.1f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 20; ++epoch) {
    m.zero_grad();
    const auto lg = of::nn::softmax_cross_entropy(m.forward(x), y);
    m.backward(lg.grad);
    opt.step();
    if (epoch == 0) first_loss = lg.loss;
    last_loss = lg.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.3f);
}

}  // namespace
