// of::obs tests: SPSC ring semantics (overflow keeps newest-N, no torn
// events), concurrent writers (run under the tsan preset), registry
// instrument semantics, golden-output exporters, the disabled fast path
// (zero events AND zero heap allocations), and an end-to-end Engine run
// that writes a structurally valid, correctly nested Chrome trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "obs/obs.hpp"

// --- global allocation counter -----------------------------------------------
// Same TU-level operator-new override as bench_payload_pipeline: counts every
// heap allocation in the binary so the disabled-mode test can assert the
// record path allocates nothing.

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
// Nothrow variants must be replaced too: the non-throwing new must pair with
// the free-based delete below (libstdc++'s stable_sort temp buffer uses it).
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using of::config::parse_yaml;
using of::core::Engine;
using of::core::RunResult;
using of::obs::Counter;
using of::obs::Gauge;
using of::obs::Histogram;
using of::obs::Name;
using of::obs::ObsConfig;
using of::obs::Registry;
using of::obs::ScopedSpan;
using of::obs::TraceEvent;
using of::obs::TraceRecorder;

TraceEvent make_event(std::uint64_t ts, std::uint64_t dur, Name name, int node,
                      std::uint32_t round, std::uint64_t arg) {
  TraceEvent e;
  e.ts_ns = ts;
  e.dur_ns = dur;
  e.name = name;
  e.node = node;
  e.round = round;
  e.arg = arg;
  return e;
}

// --- ring semantics ------------------------------------------------------------

TEST(TraceRing, RecordsAndDrainsInOrder) {
  auto& rec = TraceRecorder::global();
  rec.reset(64);
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i)
    of::obs::instant(Name::PoolHit, 3, 2, i);
  rec.set_enabled(false);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].arg, i);
    EXPECT_EQ(events[i].node, 3);
    EXPECT_EQ(events[i].round, 2u);
    EXPECT_EQ(events[i].name, Name::PoolHit);
    EXPECT_EQ(events[i].dur_ns, 0u);
  }
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
}

TEST(TraceRing, OverflowKeepsNewestWithoutTearing) {
  auto& rec = TraceRecorder::global();
  constexpr std::size_t kCap = 8;
  constexpr std::uint64_t kTotal = 100;
  rec.reset(kCap);
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    // Encode i redundantly across fields so a torn slot is detectable.
    TraceEvent e;
    e.ts_ns = i;
    e.dur_ns = i + 1;
    e.arg = i;
    e.round = static_cast<std::uint32_t>(i);
    e.name = Name::TcpSend;
    rec.record(e);
  }
  rec.set_enabled(false);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), kCap);  // newest-N survive, oldest overwritten
  for (std::size_t i = 0; i < kCap; ++i) {
    const std::uint64_t expect = kTotal - kCap + i;
    EXPECT_EQ(events[i].ts_ns, expect);
    EXPECT_EQ(events[i].dur_ns, expect + 1);  // consistent fields = not torn
    EXPECT_EQ(events[i].arg, expect);
    EXPECT_EQ(events[i].round, static_cast<std::uint32_t>(expect));
  }
}

TEST(TraceRing, ConcurrentWritersEachKeepTheirOwnRing) {
  auto& rec = TraceRecorder::global();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  rec.reset(1 << 14);  // big enough that nothing is overwritten
  rec.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        of::obs::instant(Name::TcpRecv, t, 0, i);
    });
  }
  for (auto& t : threads) t.join();
  // Producers joined → drain is race-free (the memory model the engine uses).
  rec.set_enabled(false);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Per writer: all events present, args forming exactly 0..kPerThread-1
  // when re-sorted (drain interleaves by timestamp).
  std::vector<std::vector<std::uint64_t>> per_node(kThreads);
  for (const auto& e : events) {
    ASSERT_GE(e.node, 0);
    ASSERT_LT(e.node, kThreads);
    per_node[static_cast<std::size_t>(e.node)].push_back(e.arg);
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_node[static_cast<std::size_t>(t)].size(), kPerThread);
    std::sort(per_node[static_cast<std::size_t>(t)].begin(),
              per_node[static_cast<std::size_t>(t)].end());
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      EXPECT_EQ(per_node[static_cast<std::size_t>(t)][i], i);
  }
}

TEST(TraceRing, ResetDropsOldEventsAndRebindsLiveThreads) {
  auto& rec = TraceRecorder::global();
  rec.reset(64);
  rec.set_enabled(true);
  of::obs::instant(Name::PoolMiss, 1, 0, 111);
  rec.reset(64);  // this thread's cached ring pointer is now stale
  of::obs::instant(Name::PoolMiss, 2, 0, 222);  // must re-acquire, not crash
  rec.set_enabled(false);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg, 222u);
  EXPECT_EQ(events[0].node, 2);
}

// --- disabled fast path ---------------------------------------------------------

TEST(TraceDisabled, NoEventsAndNoAllocations) {
  auto& rec = TraceRecorder::global();
  rec.reset(64);
  rec.set_enabled(false);
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    ScopedSpan span(Name::LocalTrain, 1, 0, 42);
    of::obs::instant(Name::TcpSend, 1, 0, 7);
  }
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after - allocs_before, 0u) << "disabled record path allocated";
  EXPECT_TRUE(rec.drain().empty()) << "disabled record path produced events";
}

// --- registry -------------------------------------------------------------------

TEST(Registry, CounterGaugeHistogramSemantics) {
  Registry reg;
  Counter& c = reg.counter("unit.counter");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("unit.counter"), &c);  // stable handle

  Gauge& g = reg.gauge("unit.gauge");
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);

  Histogram& h = reg.histogram("unit.hist");
  h.observe(0);   // bucket 0 (le 0)
  h.observe(1);   // bucket 1 (le 1)
  h.observe(2);   // bucket 2 (le 3)
  h.observe(3);   // bucket 2
  h.observe(100); // bucket 7 (le 127)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(7), 1u);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("unit.counter"), 5);
  EXPECT_EQ(snap.at("unit.gauge"), 12);
}

TEST(Registry, HistogramBucketBounds) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~0ull);
}

// --- exporters (golden) ---------------------------------------------------------

TEST(Exporters, ChromeTraceGolden) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(1500, 2500, Name::LocalTrain, 1, 0, 0));
  events.push_back(make_event(4123, 0, Name::TcpReconnect, 2, 1, 3));
  events[0].tid = 0;
  events[1].tid = 1;
  const std::string expected =
      "[\n"
      "{\"name\":\"local_train\",\"cat\":\"node\",\"ph\":\"X\",\"ts\":1.500,"
      "\"dur\":2.500,\"pid\":0,\"tid\":0,\"args\":{\"node\":1,\"round\":0,\"arg\":0}},\n"
      "{\"name\":\"tcp.reconnect\",\"cat\":\"tcp\",\"ph\":\"i\",\"ts\":4.123,"
      "\"s\":\"t\",\"pid\":0,\"tid\":1,\"args\":{\"node\":2,\"round\":1,\"arg\":3}}\n"
      "]\n";
  EXPECT_EQ(of::obs::to_chrome_trace(events), expected);
}

TEST(Exporters, ChromeTraceEmptyIsValidJson) {
  EXPECT_EQ(of::obs::to_chrome_trace({}), "[\n]\n");
}

TEST(Exporters, PrometheusGolden) {
  Registry reg;
  reg.counter("tcp.reconnects").inc(3);
  reg.gauge("pool.size").set(-2);
  Histogram& h = reg.histogram("async.staleness");
  h.observe(0);
  h.observe(2);
  h.observe(3);
  const std::string expected =
      "# TYPE of_tcp_reconnects counter\n"
      "of_tcp_reconnects 3\n"
      "# TYPE of_pool_size gauge\n"
      "of_pool_size -2\n"
      "# TYPE of_async_staleness histogram\n"
      "of_async_staleness_bucket{le=\"0\"} 1\n"
      "of_async_staleness_bucket{le=\"1\"} 1\n"
      "of_async_staleness_bucket{le=\"3\"} 3\n"
      "of_async_staleness_bucket{le=\"+Inf\"} 3\n"
      "of_async_staleness_sum 5\n"
      "of_async_staleness_count 3\n";
  EXPECT_EQ(of::obs::to_prometheus_text(reg), expected);
}

TEST(Exporters, EventCsvGolden) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, 5, Name::Encode, 0, 2, 99));
  const std::string expected =
      "ts_ns,dur_ns,tid,node,round,category,name,arg\n"
      "10,5,0,0,2,node,encode,99\n";
  EXPECT_EQ(of::obs::to_event_csv(events), expected);
}

// --- config parsing -------------------------------------------------------------

TEST(ObsConfig, DefaultsAndParsing) {
  const ObsConfig off = ObsConfig::from_config(of::config::ConfigNode());
  EXPECT_FALSE(off.enabled);
  EXPECT_TRUE(off.trace_path.empty());

  const ObsConfig on = ObsConfig::from_config(parse_yaml(R"(
enabled: true
ring_capacity: 1024
trace_path: t.json
metrics_path: m.prom
events_csv_path: e.csv
)"));
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.ring_capacity, 1024u);
  EXPECT_EQ(on.trace_path, "t.json");
  EXPECT_EQ(on.metrics_path, "m.prom");
  EXPECT_EQ(on.events_csv_path, "e.csv");

  EXPECT_THROW(ObsConfig::from_config(parse_yaml("ring_capacity: 0")),
               std::runtime_error);
}

// --- end-to-end: Engine writes a valid, nested Chrome trace --------------------

of::config::ConfigNode traced_config(const std::string& trace_path) {
  auto cfg = parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 3
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 2
  local_epochs: 1
obs:
  enabled: true
  ring_capacity: 65536
)");
  cfg["obs"]["trace_path"] = of::config::ConfigNode::string(trace_path);
  return cfg;
}

TEST(ObsEndToEnd, EngineWritesNestedChromeTrace) {
  const std::string path = ::testing::TempDir() + "of_test_trace.json";
  Engine engine(traced_config(path));
  const RunResult result = engine.run();
  ASSERT_EQ(result.rounds.size(), 2u);

  // The obs-derived columns are populated from the drained spans.
  for (const auto& r : result.rounds) {
    EXPECT_GT(r.train_s, 0.0);
    EXPECT_GT(r.recv_s, 0.0);
    EXPECT_GT(r.aggregate_s, 0.0);
  }
  EXPECT_GE(result.pool_hit_rate, 0.0);
  EXPECT_LE(result.pool_hit_rate, 1.0);
  const std::string csv = result.to_csv();
  EXPECT_NE(csv.find("participated,dropped,deadline_hit,reconnects,"
                     "train_s,encode_s,send_s,recv_s,decode_s,aggregate_s,"
                     "broadcast_s,pool_hit_rate"),
            std::string::npos);

  // The trace file exists and is structurally sound JSON (balanced
  // brackets/braces, no quotes left open).
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (char c : json) {
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"name\":\"local_train\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Nesting: every phase span lies inside its node's Round span for the
  // same round (same thread, so tid must match too).
  const auto events = TraceRecorder::global().drain();
  ASSERT_FALSE(events.empty());
  std::size_t nested_checked = 0;
  for (const auto& e : events) {
    if (e.name != Name::LocalTrain && e.name != Name::Encode &&
        e.name != Name::Recv && e.name != Name::Send &&
        e.name != Name::Decode && e.name != Name::Aggregate &&
        e.name != Name::Broadcast)
      continue;
    if (e.dur_ns == 0) continue;
    bool found_parent = false;
    for (const auto& p : events) {
      if (p.name != Name::Round || p.node != e.node || p.round != e.round ||
          p.tid != e.tid)
        continue;
      if (p.ts_ns <= e.ts_ns && e.ts_ns + e.dur_ns <= p.ts_ns + p.dur_ns) {
        found_parent = true;
        break;
      }
    }
    EXPECT_TRUE(found_parent) << "phase span (node " << e.node << ", round "
                              << e.round << ") not nested in its round span";
    ++nested_checked;
  }
  EXPECT_GT(nested_checked, 0u);
  std::remove(path.c_str());
}

TEST(ObsEndToEnd, DisabledRunProducesNoTrace) {
  auto cfg = parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 2
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 1
)");
  TraceRecorder::global().reset(64);
  Engine engine(cfg);
  const RunResult result = engine.run();
  ASSERT_EQ(result.rounds.size(), 1u);
  // No obs group → tracing stayed off: no events, no phase seconds.
  EXPECT_TRUE(TraceRecorder::global().drain().empty());
  EXPECT_EQ(result.rounds[0].train_s, 0.0);
}

}  // namespace
