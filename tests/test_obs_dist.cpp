// Distributed telemetry plane tests (DESIGN.md §9): clock-offset estimator
// goldens, telemetry blob round-trip, cross-thread/cross-node span linking,
// merged Chrome-trace export (offset correction + truncated-span synthesis),
// TCP ping/pong clock sync with injected skew, ping-vs-collective tag
// isolation, the HTTP scrape endpoint, and end-to-end Engine runs (TCP fleet
// trace, fault-round health, threads=1-vs-4 identity with telemetry on).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/inproc.hpp"
#include "comm/tcp.hpp"
#include "net_util.hpp"
#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "exec/pool.hpp"
#include "obs/clocksync.hpp"
#include "obs/export.hpp"
#include "obs/scrape.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

using of::comm::InProcGroup;
using of::comm::TcpCommunicator;
using of::config::ConfigNode;
using of::config::parse_yaml;
using of::core::Engine;
using of::core::RunResult;
using of::obs::ClockSample;
using of::obs::Fleet;
using of::obs::Name;
using of::obs::OffsetEstimator;
using of::obs::ScopedSpan;
using of::obs::TelemetrySummary;
using of::obs::TraceEvent;
using of::obs::TraceRecorder;
using of::tensor::Bytes;

// Scoped tracing session: reset + enable on entry, disable on exit so no
// later test inherits an armed recorder.
struct TracingOn {
  TracingOn() {
    TraceRecorder::global().reset();
    TraceRecorder::global().set_enabled(true);
  }
  ~TracingOn() { TraceRecorder::global().set_enabled(false); }
};

// --- clock-offset estimator ----------------------------------------------------

TEST(ClockOffset, RecoversStaticSkewExactly) {
  // Client clock runs `offset` ahead of the server clock; a symmetric wire
  // makes the midpoint estimate exact. offset = (t0+t1)/2 − server.
  const std::int64_t offset = 7'000'000;  // 7 ms
  OffsetEstimator est;
  EXPECT_FALSE(est.valid());
  const std::int64_t t0 = 1'000'000'000;
  const std::int64_t rtt = 200'000;
  est.add(ClockSample{t0, t0 + rtt / 2 - offset, t0 + rtt});
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.offset_ns(), offset);
  EXPECT_EQ(est.rtt_ns(), rtt);
}

TEST(ClockOffset, ExactIntegerMidpointForOddTimestamps) {
  // (t0 + t1) / 2 must not overflow-shift or round differently from the
  // true integer midpoint when t0 + t1 is odd.
  OffsetEstimator est;
  est.add(ClockSample{1, 0, 2});  // midpoint floor(1.5) = 1
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.offset_ns(), 1);
}

TEST(ClockOffset, MinRttFilterBeatsQueueingJitter) {
  // Samples with queueing delay on one leg distort the midpoint; the
  // estimator must keep the minimum-RTT (least distorted) sample.
  const std::int64_t offset = -3'000'000;  // client 3 ms behind
  OffsetEstimator est;
  std::int64_t t0 = 5'000'000'000;
  for (int i = 0; i < 10; ++i) {
    const std::int64_t queue = (i == 4) ? 0 : 400'000 + 90'000 * i;  // one clean ping
    const std::int64_t rtt = 150'000 + queue;
    // All the queueing lands on the return leg: server stamp near t0.
    est.add(ClockSample{t0, t0 + 75'000 - offset, t0 + rtt});
    t0 += 1'000'000'000;
  }
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.rtt_ns(), 150'000);
  EXPECT_NEAR(static_cast<double>(est.offset_ns()), static_cast<double>(offset), 1000.0);
}

TEST(ClockOffset, RejectsNegativeRtt) {
  OffsetEstimator est;
  est.add(ClockSample{100, 50, 90});  // t1 < t0: clock stepped mid-ping
  EXPECT_FALSE(est.valid());
}

// --- telemetry blob ------------------------------------------------------------

TelemetrySummary make_summary() {
  TelemetrySummary t;
  t.trace_id = 0xDEADBEEFCAFEull;
  t.rank = 3;
  t.round = 17;
  t.clock_offset_ns = -1'234'567;
  t.rtt_ns = 89'000;
  t.bytes_sent = 111;
  t.bytes_received = 222;
  t.pool_hits = 10;
  t.pool_misses = 2;
  t.reconnects = 1;
  t.frames_dropped = 4;
  t.faults_injected = 5;
  for (std::size_t i = 0; i < of::obs::kPhaseCount; ++i) {
    t.phases[i].count = i + 1;
    t.phases[i].total_ns = 1000 * (i + 1);
    t.phases[i].max_ns = 900 * (i + 1);
  }
  return t;
}

TEST(Telemetry, SummaryRoundTripsThroughFrameTail) {
  const TelemetrySummary t = make_summary();
  // The blob rides at the end of a payload frame, exactly like the wire.
  of::AlignedBytes frame(137, 0x5A);
  const std::size_t payload_len = frame.size();
  t.serialize_to(frame);
  ASSERT_EQ(frame.size(), payload_len + TelemetrySummary::kWireBytes);
  const auto got = TelemetrySummary::parse_tail(frame.data(), frame.size());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->trace_id, t.trace_id);
  EXPECT_EQ(got->rank, t.rank);
  EXPECT_EQ(got->round, t.round);
  EXPECT_EQ(got->clock_offset_ns, t.clock_offset_ns);
  EXPECT_EQ(got->rtt_ns, t.rtt_ns);
  EXPECT_EQ(got->bytes_sent, t.bytes_sent);
  EXPECT_EQ(got->bytes_received, t.bytes_received);
  EXPECT_EQ(got->pool_hits, t.pool_hits);
  EXPECT_EQ(got->pool_misses, t.pool_misses);
  EXPECT_EQ(got->reconnects, t.reconnects);
  EXPECT_EQ(got->frames_dropped, t.frames_dropped);
  EXPECT_EQ(got->faults_injected, t.faults_injected);
  for (std::size_t i = 0; i < of::obs::kPhaseCount; ++i) {
    EXPECT_EQ(got->phases[i].count, t.phases[i].count);
    EXPECT_EQ(got->phases[i].total_ns, t.phases[i].total_ns);
    EXPECT_EQ(got->phases[i].max_ns, t.phases[i].max_ns);
  }
}

TEST(Telemetry, ParseTailRejectsShortOrCorruptBuffers) {
  of::AlignedBytes frame;
  make_summary().serialize_to(frame);
  EXPECT_FALSE(TelemetrySummary::parse_tail(frame.data(), frame.size() - 1).has_value());
  frame[frame.size() - TelemetrySummary::kWireBytes] ^= 0xFF;  // break the magic
  EXPECT_FALSE(TelemetrySummary::parse_tail(frame.data(), frame.size()).has_value());
}

TEST(Telemetry, FleetPrometheusViewAndEscaping) {
  Fleet::global().reset(0xABCDull);
  TelemetrySummary t = make_summary();
  t.rank = 2;
  t.round = 5;
  Fleet::global().record(t);
  const std::string prom = Fleet::global().prometheus_text();
  EXPECT_NE(prom.find("of_fleet_info{trace_id=\"0xabcd\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("of_fleet_nodes 1"), std::string::npos);
  EXPECT_NE(prom.find("of_fleet_round{node=\"2\"} 5"), std::string::npos);
  EXPECT_NE(prom.find("of_fleet_pool_hit_rate{node=\"2\"}"), std::string::npos);
  EXPECT_NE(prom.find("of_fleet_phase_seconds_total{node=\"2\",phase=\"train\"}"),
            std::string::npos);
  EXPECT_EQ(prom.find(" nan"), std::string::npos);
  EXPECT_EQ(prom.find(" inf"), std::string::npos);

  // Conformance helpers: label escaping and the never-emit-NaN rule.
  EXPECT_EQ(of::obs::prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(of::obs::prom_double(std::nan("")), "0");
  EXPECT_EQ(of::obs::prom_double(0.25), "0.25");
}

TEST(Telemetry, FleetHealthPageFlagsStragglers) {
  Fleet::global().reset(0x1ull);
  TelemetrySummary fast = make_summary();
  fast.rank = 1;
  fast.round = 9;
  TelemetrySummary slow = make_summary();
  slow.rank = 2;
  slow.round = 6;
  Fleet::global().record(fast);
  Fleet::global().record(slow);
  Fleet::RoundHealth h;
  h.round = 9;
  h.participated = 1;
  h.expected = 2;
  h.dropped = {2};
  h.deadline_hit = true;
  Fleet::global().record_round(h);
  const std::string page = Fleet::global().health_text();
  EXPECT_NE(page.find("participated 1/2"), std::string::npos);
  EXPECT_NE(page.find("deadline_hit yes"), std::string::npos);
  EXPECT_NE(page.find("stragglers: 2"), std::string::npos);
}

// --- span parenting & cross-node context ---------------------------------------

TEST(TraceContext, NestedSpansRecordParentChain) {
  TracingOn tracing;
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    ScopedSpan outer(Name::Round, 0, 0);
    outer_id = outer.span_id();
    ASSERT_NE(outer_id, 0u);
    {
      ScopedSpan inner(Name::LocalTrain, 0, 0);
      inner_id = inner.span_id();
    }
  }
  TraceRecorder::global().set_enabled(false);
  const auto events = TraceRecorder::global().drain();
  const TraceEvent* outer_e = nullptr;
  const TraceEvent* inner_e = nullptr;
  for (const auto& e : events) {
    if (e.span_id == outer_id) outer_e = &e;
    if (e.span_id == inner_id) inner_e = &e;
  }
  ASSERT_NE(outer_e, nullptr);
  ASSERT_NE(inner_e, nullptr);
  EXPECT_EQ(outer_e->parent_span, 0u);
  EXPECT_EQ(inner_e->parent_span, outer_id);
}

TEST(TraceContext, InProcFrameCarriesSenderSpanToReceiver) {
  TracingOn tracing;
  InProcGroup group(2);
  std::uint64_t sender_span = 0;
  {
    ScopedSpan s(Name::Broadcast, 0, 4);
    sender_span = s.span_id();
    group.comm(0).send_bytes(1, 7, Bytes{1, 2, 3});
  }
  (void)group.comm(1).recv_bytes(0, 7);  // adopts the sender's context
  std::uint64_t round_span = 0;
  {
    ScopedSpan r(Name::Round, 1, 4);
    r.link_remote_parent();
    round_span = r.span_id();
  }
  TraceRecorder::global().set_enabled(false);
  const auto events = TraceRecorder::global().drain();
  const TraceEvent* round_e = nullptr;
  for (const auto& e : events)
    if (e.span_id == round_span) round_e = &e;
  ASSERT_NE(round_e, nullptr);
  EXPECT_EQ(round_e->parent_span, sender_span) << "cross-thread edge lost";
}

// --- merged Chrome trace -------------------------------------------------------

TEST(MergedTrace, AppliesOffsetsAndAssignsPidsPerNode) {
  std::vector<TraceEvent> events;
  TraceEvent server;
  server.ts_ns = 1000;
  server.dur_ns = 5000;
  server.span_id = 11;
  server.node = 0;
  server.round = 0;
  server.name = Name::Round;
  TraceEvent client;
  client.ts_ns = 2000;
  client.dur_ns = 1000;
  client.span_id = 21;
  client.parent_span = 11;
  client.node = 1;
  client.round = 0;
  client.name = Name::Round;
  TraceEvent shared;
  shared.ts_ns = 100;
  shared.dur_ns = 50;
  shared.node = -1;
  shared.name = Name::ExecJob;
  events = {server, client, shared};

  // Node 1's clock runs 500 ns ahead of the coordinator.
  const std::string json =
      of::obs::to_chrome_trace_merged(events, {{1, 500}});
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"args\":{\"name\":\"node 0\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"node 1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":9999"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"shared\"}"), std::string::npos);
  // Corrected timestamp: 2000 − 500 = 1500 ns → "1.500" µs, same pid as node.
  EXPECT_NE(json.find("\"ts\":1.500,\"dur\":1.000,\"pid\":1"), std::string::npos);
  // The cross-node parent edge survives the merge.
  EXPECT_NE(json.find("\"id\":21,\"parent\":11"), std::string::npos);
}

TEST(MergedTrace, NegativeCorrectedTimestampsAreWellFormed) {
  TraceEvent e;
  e.ts_ns = 100;
  e.dur_ns = 10;
  e.span_id = 1;
  e.node = 1;
  e.name = Name::Round;
  const std::string json = of::obs::to_chrome_trace_merged({e}, {{1, 500}});
  EXPECT_NE(json.find("\"ts\":-0.400"), std::string::npos);
}

TEST(MergedTrace, SynthesizesTruncatedRoundForDeadlineCutClient) {
  // A client cut mid-round leaves phase spans with no enclosing Round span;
  // the merge must synthesize a well-formed, truncated envelope.
  TraceEvent train;
  train.ts_ns = 1000;
  train.dur_ns = 400;
  train.span_id = 31;
  train.node = 2;
  train.round = 3;
  train.tid = 7;
  train.name = Name::LocalTrain;
  TraceEvent send;
  send.ts_ns = 1500;
  send.dur_ns = 200;
  send.span_id = 32;
  send.node = 2;
  send.round = 3;
  send.tid = 7;
  send.name = Name::Send;
  const std::string json = of::obs::to_chrome_trace_merged({train, send}, {});
  EXPECT_NE(json.find("{\"name\":\"round\",\"cat\":\"node\",\"ph\":\"X\",\"ts\":1.000,"
                      "\"dur\":0.700,\"pid\":2,\"tid\":7,\"args\":{\"node\":2,"
                      "\"round\":3,\"arg\":0,\"truncated\":1}}"),
            std::string::npos);
}

TEST(MergedTrace, DoesNotSynthesizeWhenRoundSpanClosed) {
  TraceEvent round;
  round.ts_ns = 900;
  round.dur_ns = 1000;
  round.span_id = 40;
  round.node = 2;
  round.round = 3;
  round.name = Name::Round;
  TraceEvent train;
  train.ts_ns = 1000;
  train.dur_ns = 400;
  train.span_id = 41;
  train.node = 2;
  train.round = 3;
  train.name = Name::LocalTrain;
  const std::string json = of::obs::to_chrome_trace_merged({round, train}, {});
  EXPECT_EQ(json.find("truncated"), std::string::npos);
}

// --- TCP clock sync ------------------------------------------------------------

TEST(TcpClockSync, PingPongRecoversInjectedSkew) {
  std::unique_ptr<TcpCommunicator> server;
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });
  auto client = TcpCommunicator::make_client("127.0.0.1", port, 1, 2);
  srv.join();
  ASSERT_NE(server, nullptr);

  const std::int64_t skew = 5'000'000;  // server pretends to be 5 ms ahead
  server->set_pong_skew_for_test(skew);
  of::obs::OffsetEstimator est;
  for (int i = 0; i < 4; ++i) {
    const auto sample = client->ping_server(2.0);
    ASSERT_TRUE(sample.has_value()) << "ping " << i << " timed out";
    EXPECT_GT(sample->t1_ns, sample->t0_ns);
    est.add(*sample);
  }
  ASSERT_TRUE(est.valid());
  EXPECT_GT(est.rtt_ns(), 0);
  EXPECT_LT(est.rtt_ns(), 1'000'000'000);
  // Same process shares one steady clock, so the estimate must recover
  // −skew up to the loopback RTT.
  EXPECT_NEAR(static_cast<double>(est.offset_ns()), static_cast<double>(-skew), 2.0e6);
}

TEST(TcpClockSync, PingsInterleaveWithGatherUnderTinyTagWindow) {
  // Regression: re-pings ride control tags (−2/−3), so they must never
  // claim — or collide with — a collective tag slot, even when the window
  // is shrunk to 2 and wraps every other collective.
  std::unique_ptr<TcpCommunicator> server;
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });
  auto client = TcpCommunicator::make_client("127.0.0.1", port, 1, 2);
  srv.join();
  ASSERT_NE(server, nullptr);
  server->set_collective_tag_window_for_test(2);
  client->set_collective_tag_window_for_test(2);

  std::thread server_side([&] {
    for (int r = 0; r < 8; ++r) {
      const auto frames = server->gather_bytes({}, 0);
      ASSERT_EQ(frames.size(), 2u);
      ASSERT_EQ(frames[1].size(), 2u);
      EXPECT_EQ(frames[1][0], static_cast<std::uint8_t>(r));
      EXPECT_EQ(frames[1][1], 0xAB);
    }
  });
  for (int r = 0; r < 8; ++r) {
    const auto sample = client->ping_server(2.0);
    EXPECT_TRUE(sample.has_value()) << "ping before round " << r << " lost";
    (void)client->gather_bytes(Bytes{static_cast<std::uint8_t>(r), 0xAB}, 0);
  }
  server_side.join();
}

// --- HTTP scrape endpoint ------------------------------------------------------

int connect_loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = inet_addr("127.0.0.1");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = connect_loopback(port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return {};
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Connection: close terminates the response
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Scrape, RoutesRenderMetricsFleetAnd404) {
  const auto metrics = of::obs::handle_scrape("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("of_fleet_nodes"), std::string::npos);
  const auto fleet = of::obs::handle_scrape("/fleet");
  EXPECT_EQ(fleet.status, 200);
  EXPECT_NE(fleet.body.find("fleet health"), std::string::npos);
  EXPECT_EQ(of::obs::handle_scrape("/").status, 200);
  EXPECT_EQ(of::obs::handle_scrape("/bogus").status, 404);
  const std::string wire = of::obs::render_http(metrics);
  EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
}

TEST(Scrape, TcpListenerServesPrometheusTextOverRawGet) {
  // Seed the fleet so the scrape carries per-node round metrics.
  Fleet::global().reset(0x77ull);
  TelemetrySummary t = make_summary();
  t.rank = 2;
  t.round = 5;
  Fleet::global().record(t);

  std::unique_ptr<TcpCommunicator> server;
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });
  auto client = TcpCommunicator::make_client("127.0.0.1", port, 1, 2);
  srv.join();
  ASSERT_NE(server, nullptr);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("of_fleet_round{node=\"2\"} 5"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE of_fleet_nodes gauge"), std::string::npos);

  const std::string fleet = http_get(port, "/fleet");
  EXPECT_EQ(fleet.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(fleet.find("node 2:"), std::string::npos);

  const std::string missing = http_get(port, "/bogus");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);

  // The data plane still works after scrape connections came and went.
  std::thread server_side([&] {
    const auto frames = server->gather_bytes({}, 0);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[1], (Bytes{9, 9}));
  });
  (void)client->gather_bytes(Bytes{9, 9}, 0);
  server_side.join();
}

TEST(Scrape, FleetJsonOverRawGetMatchesPrometheusGaugeNames) {
  // Seed one node row and one combiner row so both generated JSON surfaces
  // are populated.
  Fleet::global().reset(0x99ull);
  TelemetrySummary t = make_summary();
  t.rank = 1;
  t.round = 3;
  Fleet::global().record(t);
  Fleet::CombinerHealth ch;
  ch.group = 0;
  ch.round = 3;
  ch.participated = 2;
  ch.expected = 3;
  ch.dropped = 1;
  ch.agg_peak_bytes = 4096;
  Fleet::global().record_combiner(ch);

  std::unique_ptr<TcpCommunicator> server;
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });
  auto client = TcpCommunicator::make_client("127.0.0.1", port, 1, 2);
  srv.join();
  ASSERT_NE(server, nullptr);

  const std::string resp = http_get(port, "/fleet.json");
  EXPECT_EQ(resp.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  const auto split = resp.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  std::string body = resp.substr(split + 4);
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) body.pop_back();
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');
  EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
            std::count(body.begin(), body.end(), '}'));

  const std::string prom = http_get(port, "/metrics");

  // Name-for-name: every exported per-node descriptor field appears as an
  // of_fleet_<name> family in the Prometheus scrape AND as a "<name>" key in
  // /fleet.json; same for the per-combiner descriptor. Both surfaces render
  // from the same field lists, so a mismatch means hand-edited drift.
  of::refl::for_each_field<TelemetrySummary>([&](const auto& f) {
    if (f.exported == of::refl::Export::Skip) return;
    const std::string name = f.export_name();
    EXPECT_NE(body.find("\"" + name + "\":"), std::string::npos)
        << name << " missing from /fleet.json body";
    if (f.exported != of::refl::Export::Label)
      EXPECT_NE(prom.find("of_fleet_" + name), std::string::npos)
          << name << " missing from /metrics";
  });
  of::refl::for_each_field<Fleet::CombinerHealth>([&](const auto& f) {
    if (f.exported == of::refl::Export::Skip) return;
    const std::string name = f.export_name();
    EXPECT_NE(body.find("\"" + name + "\":"), std::string::npos)
        << name << " missing from /fleet.json combiners";
    if (f.exported != of::refl::Export::Label)
      EXPECT_NE(prom.find("of_fleet_combiner_" + name), std::string::npos)
          << name << " missing from /metrics combiner families";
  });

  // Spot-check values rode through, including the descriptor-only new field.
  EXPECT_NE(body.find("\"node\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"agg_peak_bytes\":4096"), std::string::npos) << body;

  const std::string csv = http_get(port, "/fleet.csv");
  EXPECT_NE(csv.find("Content-Type: text/csv"), std::string::npos);
  EXPECT_NE(csv.find("peak_rss_kb"), std::string::npos);
}

// --- end-to-end Engine runs ----------------------------------------------------

ConfigNode dist_config(int clients, int rounds) {
  ConfigNode cfg = parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
obs:
  enabled: true
  telemetry: true
  clock_sync_rounds: 2
)");
  cfg.set_path("topology.num_clients", ConfigNode::integer(clients));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(rounds));
  return cfg;
}

TEST(EngineDist, TcpFleetRunWritesMergedOffsetCorrectedTrace) {
  const std::string trace_path = ::testing::TempDir() + "of_dist_trace.json";
  ConfigNode cfg = dist_config(3, 3);
  cfg.set_path("topology.inner_comm._target_",
               ConfigNode::string("src.omnifed.communicator.GrpcCommunicator"));
  cfg.set_path("topology.inner_comm.port", ConfigNode::integer(of::testutil::ephemeral_port()));
  cfg.set_path("obs.trace_path", ConfigNode::string(trace_path));
  cfg.set_path("obs.split_trace_per_node", ConfigNode::boolean(true));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 3u);

  // Every client reported its last round and a valid clock offset estimate.
  const auto latest = Fleet::global().latest();
  ASSERT_EQ(latest.size(), 3u);
  for (const auto& t : latest) {
    EXPECT_EQ(t.round, 2u);
    EXPECT_GT(t.rtt_ns, 0) << "rank " << t.rank << " never completed a ping";
    EXPECT_GT(t.bytes_sent, 0u);
    EXPECT_GT(t.phases[0].count, 0u) << "train digest missing";
  }
  EXPECT_EQ(Fleet::global().clock_offsets().size(), 3u);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  // Merged view: one Chrome pid per node, with metadata names.
  for (int node = 0; node < 4; ++node) {
    std::ostringstream meta;
    meta << "\"args\":{\"name\":\"node " << node << "\"}";
    EXPECT_NE(json.find(meta.str()), std::string::npos) << "node " << node;
  }
  // Causal nesting: some client round span carries a cross-node parent edge.
  bool client_round_with_parent = false;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"name\":\"round\"") == std::string::npos) continue;
    if (line.find("\"node\":0") != std::string::npos) continue;
    if (line.find("\"parent\":") != std::string::npos) client_round_with_parent = true;
  }
  EXPECT_TRUE(client_round_with_parent)
      << "no client Round span is linked to a server span";

  // Per-node split files (--trace default naming for multi-node runs).
  for (int node = 0; node < 4; ++node) {
    std::ostringstream per_node;
    per_node << trace_path << ".rank" << node << ".json";
    std::ifstream pin(per_node.str());
    EXPECT_TRUE(pin.good()) << per_node.str() << " missing";
    std::remove(per_node.str().c_str());
  }
  std::remove(trace_path.c_str());
  std::remove((trace_path + ".shared.json").c_str());
}

TEST(EngineDist, FaultRunRecordsDeadlineHealthInFleet) {
  ConfigNode cfg = dist_config(3, 2);
  cfg.set_path("fault", parse_yaml(R"(
enabled: true
min_clients: 1
round_deadline_seconds: 0.3
quorum_timeout_seconds: 10.0
injections:
  - kind: delay
    client: 2
    round: 1
    delay_seconds: 1.0
)"));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 2u);
  EXPECT_TRUE(r.rounds[1].deadline_hit);
  EXPECT_LT(r.rounds[1].participated, 3u);

  const std::string page = Fleet::global().health_text();
  EXPECT_NE(page.find("deadline_hit yes"), std::string::npos);
  EXPECT_NE(page.find("participated 2/3"), std::string::npos);
}

TEST(EngineDist, ThreadsIdenticalWithTelemetryEnabled) {
  // The telemetry plane must never feed back into training state: the run
  // stays bitwise identical across thread counts with everything on.
  const auto run_with_threads = [](std::int64_t threads) {
    ConfigNode cfg = dist_config(4, 3);
    cfg.set_path("exec.threads", ConfigNode::integer(threads));
    Engine engine(std::move(cfg));
    return engine.run();
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  of::exec::Pool::global().configure(1);  // leave later tests serial

  ASSERT_FALSE(serial.final_model_bytes.empty());
  ASSERT_EQ(serial.final_model_bytes.size(), parallel.final_model_bytes.size());
  EXPECT_TRUE(serial.final_model_bytes == parallel.final_model_bytes)
      << "telemetry perturbed training state";
  EXPECT_EQ(serial.to_metrics_csv(), parallel.to_metrics_csv());
}

}  // namespace
