// Payload codec properties: round-trips across every mode, exact mean
// recovery, skip-frame handling, hostile/malformed frame rejection, the
// double-precision weight scaling, view-based compressed decode and the
// FramePool the zero-copy pipeline rides on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/nonfinite.hpp"
#include "simd/simd.hpp"

#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"
#include "core/frame_pool.hpp"
#include "core/payload.hpp"
#include "privacy/dp.hpp"
#include "privacy/mechanism.hpp"
#include "tensor/serialize.hpp"

namespace {

using of::core::FramePool;
using of::core::PayloadPlugins;
using of::tensor::Bytes;
using of::tensor::ConstByteSpan;
using of::tensor::Rng;
using of::tensor::Tensor;

// A payload with `count` tensors of varied rank (1-D/2-D mix) and a fixed
// total element count budget per tensor, integer-valued so float sums over
// power-of-two cohorts are exact.
std::vector<Tensor> make_payload(std::size_t count, std::uint64_t seed,
                                 bool integer_valued = false) {
  Rng rng(seed);
  std::vector<Tensor> ts;
  for (std::size_t i = 0; i < count; ++i) {
    Tensor t = (i % 2 == 0) ? Tensor::randn({5, 7}, rng) : Tensor::randn({23}, rng);
    if (integer_valued)
      for (std::size_t j = 0; j < t.numel(); ++j) t[j] = std::round(t[j] * 8.0f);
    ts.push_back(std::move(t));
  }
  return ts;
}

void expect_equal(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape());
    for (std::size_t j = 0; j < a[i].numel(); ++j) EXPECT_EQ(a[i][j], b[i][j]) << i;
  }
}

// --- round-trips across modes and tensor counts --------------------------------

TEST(PayloadRoundTrip, PlainAllTensorCounts) {
  for (std::size_t count : {1u, 3u, 17u}) {
    const auto payload = make_payload(count, 100 + count);
    const Bytes frame = of::core::encode_update(payload, 1.0, {}, 0, 1);
    const auto decoded = of::core::decode_update(frame, nullptr);
    expect_equal(payload, decoded);
    // Re-encoding the decoded payload reproduces the frame byte-for-byte.
    const Bytes again = of::core::encode_update(decoded, 1.0, {}, 0, 1);
    EXPECT_EQ(frame, again);
  }
}

TEST(PayloadRoundTrip, IdentityCodecAllTensorCounts) {
  for (std::size_t count : {1u, 3u, 17u}) {
    of::compression::Identity codec;
    const auto payload = make_payload(count, 200 + count);
    const PayloadPlugins plugins{&codec, nullptr};
    const Bytes frame = of::core::encode_update(payload, 1.0, plugins, 0, 1);
    const auto decoded = of::core::decode_update(frame, &codec);
    expect_equal(payload, decoded);
    const Bytes again = of::core::encode_update(decoded, 1.0, plugins, 0, 1);
    EXPECT_EQ(frame, again);
  }
}

TEST(PayloadRoundTrip, SparseCodecsAreIdempotentOnOwnOutput) {
  // A lossy sparsifier applied to its own (already k-sparse) output selects
  // the same support: decode ∘ encode is idempotent after one application.
  of::compression::TopK topk(/*factor_or_k=*/10.0, /*is_factor=*/true);
  const auto payload = make_payload(3, 7);
  const PayloadPlugins plugins{&topk, nullptr};
  const Bytes frame = of::core::encode_update(payload, 1.0, plugins, 0, 1);
  const auto once = of::core::decode_update(frame, &topk);
  const Bytes frame2 = of::core::encode_update(once, 1.0, plugins, 0, 1);
  const auto twice = of::core::decode_update(frame2, &topk);
  expect_equal(once, twice);
}

TEST(PayloadRoundTrip, QsgdSameSeedSameFrame) {
  // QSGD is stochastic; determinism is per seed.
  const auto payload = make_payload(3, 9);
  of::compression::QSGD a(8, /*seed=*/21), b(8, /*seed=*/21);
  const Bytes fa =
      of::core::encode_update(payload, 1.0, PayloadPlugins{&a, nullptr}, 0, 1);
  const Bytes fb =
      of::core::encode_update(payload, 1.0, PayloadPlugins{&b, nullptr}, 0, 1);
  EXPECT_EQ(fa, fb);
}

TEST(PayloadRoundTrip, NoPrivacyMeanExactAllTensorCounts) {
  for (std::size_t count : {1u, 3u, 17u}) {
    of::privacy::NoPrivacy mech;
    const PayloadPlugins plugins{nullptr, &mech};
    const auto payload = make_payload(count, 300 + count, /*integer_valued=*/true);
    std::vector<Bytes> frames;
    for (int c = 0; c < 8; ++c)
      frames.push_back(of::core::encode_update(payload, 1.0, plugins, c, 8));
    const auto mean = of::core::mean_updates(frames, nullptr, &mech);
    expect_equal(payload, mean);  // identical updates: mean == update exactly
  }
}

// --- aggregation ----------------------------------------------------------------

TEST(PayloadAggregate, ExactMeanRecoveryPlain) {
  // Integer-valued updates and a power-of-two cohort make the float
  // sum/divide exact, so the mean must be recovered bit-for-bit.
  const std::size_t k = 8;
  std::vector<std::vector<Tensor>> updates;
  std::vector<Bytes> frames;
  for (std::size_t c = 0; c < k; ++c) {
    updates.push_back(make_payload(3, 40 + c, /*integer_valued=*/true));
    frames.push_back(of::core::encode_update(updates.back(), 1.0, {}, int(c), int(k)));
  }
  const auto mean = of::core::mean_updates(frames, nullptr, nullptr);
  ASSERT_EQ(mean.size(), updates[0].size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    for (std::size_t j = 0; j < mean[i].numel(); ++j) {
      float expected = 0.0f;
      for (std::size_t c = 0; c < k; ++c) expected += updates[c][i][j];
      expected /= float(k);
      EXPECT_EQ(mean[i][j], expected);
    }
  }
}

TEST(PayloadAggregate, SkipFramesAreExcludedFromTheMean) {
  const auto payload = make_payload(3, 50, /*integer_valued=*/true);
  std::vector<Bytes> frames;
  frames.push_back(of::core::encode_update(payload, 1.0, {}, 0, 4));
  frames.push_back(of::core::encode_skip_update());
  frames.push_back(of::core::encode_update(payload, 1.0, {}, 2, 4));
  frames.push_back(of::core::encode_skip_update());
  const auto mean = of::core::mean_updates(frames, nullptr, nullptr);
  expect_equal(payload, mean);  // two identical contributions / 2
}

TEST(PayloadAggregate, AllSkippedThrows) {
  std::vector<Bytes> frames{of::core::encode_skip_update(),
                            of::core::encode_skip_update()};
  EXPECT_THROW((void)of::core::mean_updates(frames, nullptr, nullptr),
               std::runtime_error);
}

TEST(PayloadAggregate, DpMeanWithinNoiseTolerance) {
  // clip_norm 10 > update norm (~7.6), so clipping is inactive; sigma is
  // clip·sqrt(2 ln(1.25/delta))/eps ≈ 6.8 per client, /sqrt(16) ≈ 1.7 on the
  // mean. A 7-sigma band keeps the check deterministic-tight but unflaky.
  of::privacy::DifferentialPrivacy dp(
      of::privacy::DpParams{/*epsilon=*/8.0, /*delta=*/1e-5, /*clip_norm=*/10.0},
      /*seed=*/5);
  const PayloadPlugins plugins{nullptr, &dp};
  const auto payload = make_payload(2, 60);
  const std::size_t k = 16;
  std::vector<Bytes> frames;
  for (std::size_t c = 0; c < k; ++c)
    frames.push_back(of::core::encode_update(payload, 1.0, plugins, int(c), int(k)));
  const auto mean = of::core::mean_updates(frames, nullptr, &dp);
  ASSERT_EQ(mean.size(), payload.size());
  for (std::size_t i = 0; i < mean.size(); ++i)
    for (std::size_t j = 0; j < mean[i].numel(); ++j)
      EXPECT_NEAR(mean[i][j], payload[i][j], 12.0) << "noise far beyond sigma";
}

// --- malformed / hostile frames -------------------------------------------------

TEST(PayloadMalformed, TruncatedManifestRejected) {
  const auto payload = make_payload(3, 70);
  Bytes frame = of::core::encode_update(payload, 1.0, {}, 0, 1);
  // Cut mid-manifest: mode byte + count survive, dims do not.
  Bytes cut(frame.begin(), frame.begin() + 7);
  EXPECT_THROW((void)of::core::decode_update(cut, nullptr), std::runtime_error);
}

TEST(PayloadMalformed, TrailingBytesRejected) {
  const auto payload = make_payload(2, 71);
  Bytes frame = of::core::encode_update(payload, 1.0, {}, 0, 1);
  frame.push_back(0xAB);
  EXPECT_THROW((void)of::core::decode_update(frame, nullptr), std::runtime_error);
  std::vector<Bytes> frames{frame};
  EXPECT_THROW((void)of::core::mean_updates(frames, nullptr, nullptr),
               std::runtime_error);
}

TEST(PayloadMalformed, MixedModesRejected) {
  of::compression::Identity codec;
  const auto payload = make_payload(2, 72);
  std::vector<Bytes> frames;
  frames.push_back(of::core::encode_update(payload, 1.0, {}, 0, 2));
  frames.push_back(
      of::core::encode_update(payload, 1.0, PayloadPlugins{&codec, nullptr}, 1, 2));
  EXPECT_THROW((void)of::core::mean_updates(frames, &codec, nullptr),
               std::runtime_error);
}

TEST(PayloadMalformed, HostileTensorCountRejected) {
  // count = 2^32-1 in a frame with almost no bytes behind it must be
  // rejected before the shapes vector allocates.
  Bytes frame;
  frame.push_back(0);  // kPlain
  of::tensor::append_pod<std::uint32_t>(frame, 0xFFFFFFFFu);
  EXPECT_THROW((void)of::core::decode_update(frame, nullptr), std::runtime_error);
}

TEST(PayloadMalformed, BogusDimsRejected) {
  // One tensor claiming 2^40 elements: over the 1 GiB frame cap.
  Bytes frame;
  frame.push_back(0);  // kPlain
  of::tensor::append_pod<std::uint32_t>(frame, 1);   // one tensor
  of::tensor::append_pod<std::uint32_t>(frame, 1);   // ndim
  of::tensor::append_pod<std::uint64_t>(frame, std::uint64_t{1} << 40);
  EXPECT_THROW((void)of::core::decode_update(frame, nullptr), std::runtime_error);

  // Individually-small dims whose product overflows must also be rejected.
  Bytes frame2;
  frame2.push_back(0);
  of::tensor::append_pod<std::uint32_t>(frame2, 1);
  of::tensor::append_pod<std::uint32_t>(frame2, 4);  // ndim = 4
  for (int d = 0; d < 4; ++d)
    of::tensor::append_pod<std::uint64_t>(frame2, std::uint64_t{1} << 20);
  EXPECT_THROW((void)of::core::decode_update(frame2, nullptr), std::runtime_error);
}

TEST(PayloadMalformed, HostileSerializedTensorRejected) {
  // The pack_tensors/unpack_tensors path (global broadcast) has the same
  // hardening: hostile count and bogus dims must not allocate.
  Bytes b;
  of::tensor::append_pod<std::uint32_t>(b, 0xFFFFFFFFu);
  EXPECT_THROW((void)of::core::unpack_tensors(b), std::runtime_error);

  Bytes b2;
  of::tensor::append_pod<std::uint32_t>(b2, 1);  // one tensor
  of::tensor::append_pod<std::uint32_t>(b2, 1);  // ndim
  of::tensor::append_pod<std::uint64_t>(b2, std::uint64_t{1} << 50);
  EXPECT_THROW((void)of::core::unpack_tensors(b2), std::runtime_error);
}

// --- weight scaling precision ---------------------------------------------------

TEST(PayloadWeightScale, AppliedInDoublePrecision) {
  // Two per-client weights that collapse to the same float: only a scaling
  // path that stays double until the final narrowing store can tell the
  // resulting frames apart. (The weight must stay away from small-denominator
  // rationals like 2/3 — products with those cluster away from float
  // rounding midpoints and the two scales become indistinguishable even in
  // double.)
  const double w1 = 700000001.0 / 1234567891.0;
  const double w2 = 700000000.0 / 1234567891.0;
  ASSERT_EQ(static_cast<float>(w1), static_cast<float>(w2));
  ASSERT_NE(w1, w2);

  Rng rng(123);
  std::vector<Tensor> payload{Tensor::randn({256, 256}, rng)};
  const Bytes f1 = of::core::encode_update(payload, w1, {}, 0, 2);
  const Bytes f2 = of::core::encode_update(payload, w2, {}, 1, 2);
  EXPECT_NE(f1, f2) << "sub-float weight distinction lost in encode";

  // Every element must equal the double product narrowed once at the end.
  const auto decoded = of::core::decode_update(f1, nullptr);
  ASSERT_EQ(decoded.size(), 1u);
  for (std::size_t j = 0; j < payload[0].numel(); ++j) {
    const float expected =
        static_cast<float>(static_cast<double>(payload[0][j]) * w1);
    ASSERT_EQ(decoded[0][j], expected) << "element " << j;
  }
}

// --- view-based compressed decode -----------------------------------------------

TEST(PayloadViews, CompressedBodyDecodedAtNonzeroOffset) {
  // decompress() must read through the view at its offset inside the frame;
  // build a buffer with a junk prefix and hand the codec a subspan view.
  of::compression::TopK topk(/*factor_or_k=*/4.0, /*is_factor=*/true);
  Rng rng(11);
  const Tensor t = Tensor::randn({128}, rng);
  of::compression::Compressed c = topk.compress(t);

  Bytes buffer(13, 0xEE);  // unaligned junk prefix
  buffer.insert(buffer.end(), c.payload.begin(), c.payload.end());
  const of::compression::CompressedView view(ConstByteSpan(buffer).subspan(13),
                                             c.original_numel);
  std::vector<float> out(c.original_numel);
  topk.decompress(view, of::tensor::FloatSpan(out.data(), out.size()));

  const Tensor reference = topk.decompress(c);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], reference[i]);
}

TEST(PayloadViews, DecodeUpdateMatchesCodecOutput) {
  of::compression::TopK topk(/*factor_or_k=*/4.0, /*is_factor=*/true);
  of::compression::TopK server(/*factor_or_k=*/4.0, /*is_factor=*/true);
  const auto payload = make_payload(3, 80);
  const Bytes frame =
      of::core::encode_update(payload, 1.0, PayloadPlugins{&topk, nullptr}, 0, 1);
  const auto via_frame = of::core::decode_update(frame, &server);
  ASSERT_EQ(via_frame.size(), payload.size());
  for (std::size_t i = 0; i < via_frame.size(); ++i)
    ASSERT_EQ(via_frame[i].shape(), payload[i].shape());
}

// --- FramePool ------------------------------------------------------------------

TEST(FramePoolTest, BuffersAreRecycled) {
  FramePool pool;
  {
    auto h = pool.acquire();
    h->resize(4096);
  }
  EXPECT_EQ(pool.created(), 1u);
  {
    auto h = pool.acquire();
    EXPECT_TRUE(h->empty());            // cleared on reacquire…
    EXPECT_GE(h->capacity(), 4096u);    // …but capacity survives
  }
  EXPECT_EQ(pool.created(), 1u);  // no second allocation
  EXPECT_EQ(pool.acquired(), 2u);
}

TEST(FramePoolTest, FloatBuffersSizedOnAcquire) {
  FramePool pool;
  {
    auto h = pool.acquire_floats(100);
    EXPECT_EQ(h->size(), 100u);
  }
  auto h2 = pool.acquire_floats(50);
  EXPECT_EQ(h2->size(), 50u);
  EXPECT_EQ(pool.created(), 1u);
}

TEST(FramePoolTest, LeaseMoveTransfersOwnership) {
  FramePool pool;
  auto a = pool.acquire();
  a->push_back(7);
  FramePool::Handle b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b->size(), 1u);
}

TEST(FramePoolTest, SteadyStateEncodeReusesPooledBuffers) {
  FramePool pool;
  const auto payload = make_payload(3, 90);
  of::compression::TopK topk(/*factor_or_k=*/10.0, /*is_factor=*/true);
  const PayloadPlugins plugins{&topk, nullptr};
  Bytes frame;
  of::core::encode_update_into(payload, 1.0, plugins, 0, 4, pool, frame);
  const std::size_t after_warmup = pool.created();
  for (int round = 0; round < 16; ++round)
    of::core::encode_update_into(payload, 1.0, plugins, 0, 4, pool, frame);
  EXPECT_EQ(pool.created(), after_warmup) << "steady-state encode allocated";
}

// --- numeric admission (NaN/Inf screen at encode) ------------------------------

TEST(PayloadNonFinite, PlainEncodeRejectsNaNWithCoordinate) {
  auto payload = make_payload(3, 200);
  // Poison a coordinate in the *second* tensor so the reported flat index
  // exercises the cross-tensor offset arithmetic: flat = 35 (5x7) + 11.
  payload[1][11] = std::numeric_limits<float>::quiet_NaN();
  try {
    (void)of::core::encode_update(payload, 1.0, {}, 3, 8);
    FAIL() << "expected NonFiniteUpdateError";
  } catch (const of::NonFiniteUpdateError& e) {
    EXPECT_EQ(e.coordinate(), 35u + 11u);
    EXPECT_EQ(e.client_id(), 3);
  }
}

TEST(PayloadNonFinite, QsgdFusedEncodeRejectsInf) {
  auto payload = make_payload(3, 201);
  payload[2][4] = std::numeric_limits<float>::infinity();
  of::compression::QSGD codec(8, /*seed=*/5);
  const PayloadPlugins plugins{&codec, nullptr};
  EXPECT_THROW((void)of::core::encode_update(payload, 1.0, plugins, 1, 4),
               of::NonFiniteUpdateError);
}

TEST(PayloadNonFinite, F16EncodeRejectsNaN) {
  auto payload = make_payload(2, 202);
  payload[0][0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW((void)of::core::encode_update(payload, 1.0, {}, 0, 2,
                                             of::core::WireRepr::F16),
               of::NonFiniteUpdateError);
}

TEST(PayloadNonFinite, PoisonedClientIsDroppedViaSkipFrame) {
  // The engine-level contract: the caller catches the admission error and
  // substitutes a skip frame, so the aggregate is the mean of the healthy
  // clients only.
  const auto healthy = make_payload(3, 203, /*integer_valued=*/true);
  auto poisoned = make_payload(3, 204);
  poisoned[0][0] = std::numeric_limits<float>::quiet_NaN();
  std::vector<Bytes> frames;
  frames.push_back(of::core::encode_update(healthy, 1.0, {}, 0, 4));
  try {
    frames.push_back(of::core::encode_update(poisoned, 1.0, {}, 1, 4));
  } catch (const of::NonFiniteUpdateError&) {
    frames.push_back(of::core::encode_skip_update());
  }
  frames.push_back(of::core::encode_update(healthy, 1.0, {}, 2, 4));
  const auto mean = of::core::mean_updates(frames, nullptr, nullptr);
  expect_equal(healthy, mean);  // two identical healthy contributions / 2
  for (const auto& t : mean)
    for (std::size_t j = 0; j < t.numel(); ++j)
      EXPECT_TRUE(std::isfinite(t[j]));
}

// --- fp16 wire representation --------------------------------------------------

TEST(PayloadF16, RoundTripIsRtneQuantized) {
  const auto payload = make_payload(3, 210);
  const Bytes frame =
      of::core::encode_update(payload, 1.0, {}, 0, 1, of::core::WireRepr::F16);
  // Half the plain-body bytes: 2 per element instead of 4.
  const Bytes f32_frame = of::core::encode_update(payload, 1.0, {}, 0, 1);
  std::size_t total = 0;
  for (const auto& t : payload) total += t.numel();
  EXPECT_EQ(f32_frame.size() - frame.size(), total * 2);
  const auto decoded = of::core::decode_update(frame, nullptr);
  ASSERT_EQ(decoded.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    ASSERT_EQ(decoded[i].shape(), payload[i].shape());
    for (std::size_t j = 0; j < payload[i].numel(); ++j) {
      // Each coordinate equals its RTNE half image exactly.
      std::uint16_t h = 0;
      float back = 0.0f;
      const float x = payload[i][j];
      of::simd::f32_to_f16(&h, &x, 1);
      of::simd::f16_to_f32(&back, &h, 1);
      EXPECT_EQ(decoded[i][j], back) << i << "," << j;
      EXPECT_NEAR(decoded[i][j], payload[i][j],
                  1e-3f + 1e-3f * std::fabs(payload[i][j]));
    }
  }
}

TEST(PayloadF16, MeanAndStreamingSumAgreeWithDecodedFrames) {
  const std::size_t k = 4;
  std::vector<Bytes> frames;
  for (std::size_t c = 0; c < k; ++c)
    frames.push_back(of::core::encode_update(make_payload(3, 220 + c), 1.0, {},
                                             int(c), int(k),
                                             of::core::WireRepr::F16));
  const auto mean = of::core::mean_updates(frames, nullptr, nullptr);
  // Reference: decode each f16 frame, mean in float.
  std::vector<std::vector<Tensor>> decoded;
  for (const auto& f : frames) decoded.push_back(of::core::decode_update(f, nullptr));
  for (std::size_t i = 0; i < mean.size(); ++i)
    for (std::size_t j = 0; j < mean[i].numel(); ++j) {
      float expected = 0.0f;
      for (std::size_t c = 0; c < k; ++c) expected += decoded[c][i][j];
      expected /= float(k);
      EXPECT_NEAR(mean[i][j], expected, 1e-6f) << i << "," << j;
    }
  // StreamingSum folds the same frames to the same mean (bitwise vs its own
  // finish; near vs the reference above).
  of::core::FramePool pool;
  of::core::StreamingSum sum(pool);
  for (const auto& f : frames) sum.add(f);
  const auto streamed = sum.finish_mean();
  ASSERT_EQ(streamed.size(), mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i)
    for (std::size_t j = 0; j < mean[i].numel(); ++j)
      EXPECT_EQ(streamed[i][j], mean[i][j]) << i << "," << j;
}

TEST(PayloadF16, PartialHeaderAnnouncesReprAndOldFramesStillDecode) {
  of::core::FramePool pool;
  of::core::StreamingSum sum(pool);
  sum.add(of::core::encode_update(make_payload(2, 230), 1.0, {}, 0, 2,
                                  of::core::WireRepr::F16));
  sum.add(of::core::encode_update(make_payload(2, 231), 1.0, {}, 1, 2,
                                  of::core::WireRepr::F16));
  Bytes partial;
  sum.encode_partial_into(1.0, nullptr, partial, of::core::WireRepr::F16);
  // A downstream combiner decodes the f16 partial and agrees on the count.
  of::core::StreamingSum root(pool);
  root.add_partial(partial);
  EXPECT_EQ(root.count(), 2u);
  const auto mean = root.finish_mean();
  ASSERT_EQ(mean.size(), 2u);
  // f32 partials (the default) remain byte-compatible with pre-repr
  // decoders: the repr TLV field defaults and the body is plain mode 0.
  of::core::StreamingSum f32_sum(pool);
  f32_sum.add(of::core::encode_update(make_payload(2, 230), 1.0, {}, 0, 2));
  Bytes f32_partial;
  f32_sum.encode_partial_into(1.0, nullptr, f32_partial);
  of::core::StreamingSum f32_root(pool);
  f32_root.add_partial(f32_partial);
  EXPECT_EQ(f32_root.count(), 1u);
}

}  // namespace
