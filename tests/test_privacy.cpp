#include <gtest/gtest.h>

#include <cmath>

#include "privacy/biguint.hpp"
#include "privacy/dh.hpp"
#include "privacy/dp.hpp"
#include "privacy/he.hpp"
#include "privacy/mechanism.hpp"
#include "privacy/paillier.hpp"
#include "privacy/secure_agg.hpp"
#include "privacy/sha256.hpp"
#include "config/yaml.hpp"

namespace {

using of::privacy::BigUInt;
using of::privacy::Sha256;
using of::tensor::Bytes;
using of::tensor::Rng;
using of::tensor::Tensor;

// --- SHA-256 against FIPS 180-4 test vectors ---------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(of::privacy::digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(of::privacy::digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(of::privacy::digest_hex(
                Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(of::privacy::digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(of::privacy::digest_hex(h.finish()),
            of::privacy::digest_hex(Sha256::hash("hello world")));
}

// --- HMAC-SHA256 against RFC 4231 test vectors -------------------------------------

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(of::privacy::digest_hex(of::privacy::hmac_sha256("Jefe",
                                                             "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(of::privacy::digest_hex(of::privacy::hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(of::privacy::digest_hex(of::privacy::hmac_sha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacDrbg, DeterministicAndNonRepeating) {
  std::vector<std::uint8_t> key{1, 2, 3};
  of::privacy::HmacDrbg a(key), b(key);
  std::uint8_t x[100], y[100];
  a.generate(x, 100);
  b.generate(y, 100);
  EXPECT_EQ(0, std::memcmp(x, y, 100));
  std::uint8_t z[100];
  a.generate(z, 100);  // continuing the stream must differ
  EXPECT_NE(0, std::memcmp(x, z, 100));
}

// --- BigUInt -----------------------------------------------------------------------

TEST(BigUInt, ConstructionAndCompare) {
  EXPECT_TRUE(BigUInt().is_zero());
  EXPECT_EQ(BigUInt(5).to_u64(), 5u);
  EXPECT_EQ(BigUInt(0xFFFFFFFFFFFFFFFFULL).to_u64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_LT(BigUInt(3), BigUInt(7));
  EXPECT_GT(BigUInt(1) << 64, BigUInt(0xFFFFFFFFFFFFFFFFULL));
}

TEST(BigUInt, HexRoundtrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigUInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigUInt(0).to_hex(), "0");
}

TEST(BigUInt, BytesRoundtrip) {
  Rng rng(1);
  const BigUInt a = BigUInt::random_bits(300, rng);
  EXPECT_EQ(BigUInt::from_bytes_be(a.to_bytes_be()), a);
}

TEST(BigUInt, AddSubSmall) {
  EXPECT_EQ(BigUInt(7) + BigUInt(8), BigUInt(15));
  EXPECT_EQ(BigUInt(100) - BigUInt(58), BigUInt(42));
  EXPECT_THROW(BigUInt(1) - BigUInt(2), std::runtime_error);
}

TEST(BigUInt, CarryPropagation) {
  const BigUInt max32(0xFFFFFFFFULL);
  EXPECT_EQ((max32 + BigUInt(1)).to_u64(), 0x100000000ULL);
  const BigUInt max64(0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ((max64 + BigUInt(1)).to_hex(), "10000000000000000");
}

TEST(BigUInt, MulAgainstNative128) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const unsigned __int128 ref = static_cast<unsigned __int128>(a) * b;
    const BigUInt big = BigUInt(a) * BigUInt(b);
    EXPECT_EQ((big >> 64).to_u64(), static_cast<std::uint64_t>(ref >> 64));
    EXPECT_EQ((big % (BigUInt(1) << 64)).to_u64(), static_cast<std::uint64_t>(ref));
  }
}

TEST(BigUInt, DivModIdentityProperty) {
  // For random wide operands: u == q·v + r and r < v (Knuth D correctness).
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const std::size_t ubits = 64 + rng.next_below(450);
    const std::size_t vbits = 32 + rng.next_below(ubits);
    const BigUInt u = BigUInt::random_bits(ubits, rng);
    BigUInt v = BigUInt::random_bits(vbits, rng);
    if (v.is_zero()) v = BigUInt(1);
    BigUInt q, r;
    BigUInt::divmod(u, v, q, r);
    EXPECT_LT(r, v);
    EXPECT_EQ(q * v + r, u);
  }
}

TEST(BigUInt, DivModEdgeCases) {
  BigUInt q, r;
  // u == v
  BigUInt::divmod(BigUInt(7), BigUInt(7), q, r);
  EXPECT_EQ(q, BigUInt(1));
  EXPECT_TRUE(r.is_zero());
  // v == 1
  const BigUInt big = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  BigUInt::divmod(big, BigUInt(1), q, r);
  EXPECT_EQ(q, big);
  EXPECT_TRUE(r.is_zero());
  // divisor exactly one limb boundary (2^32)
  BigUInt::divmod(big, BigUInt(1) << 32, q, r);
  EXPECT_EQ(q, big >> 32);
  EXPECT_EQ(r, big % (BigUInt(1) << 32));
  // u < v
  BigUInt::divmod(BigUInt(3), big, q, r);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, BigUInt(3));
  // Knuth D add-back path exerciser: divisor with max top limb
  const BigUInt u = BigUInt::from_hex("80000000000000000000000000000000");
  const BigUInt v = BigUInt::from_hex("ffffffff00000001");
  BigUInt::divmod(u, v, q, r);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(BigUInt, DivByZeroThrows) {
  BigUInt q, r;
  EXPECT_THROW(BigUInt::divmod(BigUInt(5), BigUInt(0), q, r), std::runtime_error);
}

TEST(BigUInt, ShiftsInverse) {
  Rng rng(4);
  const BigUInt a = BigUInt::random_bits(200, rng);
  for (std::size_t s : {1u, 31u, 32u, 33u, 64u, 100u})
    EXPECT_EQ((a << s) >> s, a);
}

TEST(BigUInt, PowmodAgainstNative) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = rng.next_below(1 << 30);
    const std::uint64_t exp = rng.next_below(1 << 20);
    const std::uint64_t mod = 2 + rng.next_below(1 << 30);
    std::uint64_t ref = 1;
    for (std::uint64_t b = base % mod, e = exp; e; e >>= 1) {
      if (e & 1) ref = ref * b % mod;
      b = b * b % mod;
    }
    EXPECT_EQ(BigUInt::powmod(BigUInt(base), BigUInt(exp), BigUInt(mod)).to_u64(), ref);
  }
}

TEST(BigUInt, FermatLittleTheorem) {
  // a^(p-1) ≡ 1 (mod p) for generated primes — exercises powmod + prime gen.
  Rng rng(6);
  const BigUInt p = BigUInt::random_prime(96, rng);
  for (int i = 0; i < 5; ++i) {
    const BigUInt a = BigUInt(2) + BigUInt::random_below(p - BigUInt(3), rng);
    EXPECT_EQ(BigUInt::powmod(a, p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUInt, GcdLcm) {
  EXPECT_EQ(BigUInt::gcd(BigUInt(12), BigUInt(18)), BigUInt(6));
  EXPECT_EQ(BigUInt::lcm(BigUInt(4), BigUInt(6)), BigUInt(12));
  EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(13)), BigUInt(1));
}

TEST(BigUInt, InvModProperty) {
  Rng rng(7);
  const BigUInt m = BigUInt::random_prime(64, rng);
  for (int i = 0; i < 50; ++i) {
    const BigUInt a = BigUInt(1) + BigUInt::random_below(m - BigUInt(1), rng);
    const BigUInt inv = BigUInt::invmod(a, m);
    EXPECT_EQ(BigUInt::mulmod(a, inv, m), BigUInt(1));
  }
  EXPECT_THROW(BigUInt::invmod(BigUInt(6), BigUInt(9)), std::runtime_error);
}

TEST(BigUInt, MillerRabinKnownPrimesAndComposites) {
  Rng rng(8);
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(2), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(97), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(2147483647ULL), rng));  // 2^31−1
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(1), rng));
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(561), rng));   // Carmichael
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(41041), rng)); // Carmichael
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(97ULL * 89), rng));
}

TEST(BigUInt, RandomPrimeHasExactBitLength) {
  Rng rng(9);
  const BigUInt p = BigUInt::random_prime(80, rng);
  EXPECT_EQ(p.bit_length(), 80u);
  EXPECT_TRUE(p.is_odd());
}

TEST(BigUInt, RandomBelowIsBelow) {
  Rng rng(10);
  const BigUInt bound = BigUInt::random_bits(100, rng) + BigUInt(1);
  for (int i = 0; i < 100; ++i) EXPECT_LT(BigUInt::random_below(bound, rng), bound);
}

// --- Paillier ---------------------------------------------------------------------

class PaillierFixture : public ::testing::Test {
 protected:
  static of::privacy::Paillier& scheme() {
    static of::privacy::Paillier s = [] {
      Rng rng(11);
      return of::privacy::Paillier::keygen(128, rng);
    }();
    return s;
  }
};

TEST_F(PaillierFixture, EncryptDecryptRoundtrip) {
  Rng rng(12);
  for (std::uint64_t m : {0ULL, 1ULL, 42ULL, 1234567ULL}) {
    const BigUInt c = scheme().encrypt(BigUInt(m), rng);
    EXPECT_EQ(scheme().decrypt(c).to_u64(), m);
  }
}

TEST_F(PaillierFixture, HomomorphicAddition) {
  Rng rng(13);
  const BigUInt ca = scheme().encrypt(BigUInt(1000), rng);
  const BigUInt cb = scheme().encrypt(BigUInt(234), rng);
  EXPECT_EQ(scheme().decrypt(scheme().add(ca, cb)).to_u64(), 1234u);
}

TEST_F(PaillierFixture, HomomorphicScalarMultiply) {
  Rng rng(14);
  const BigUInt c = scheme().encrypt(BigUInt(77), rng);
  EXPECT_EQ(scheme().decrypt(scheme().scale(c, BigUInt(9))).to_u64(), 693u);
}

TEST_F(PaillierFixture, CiphertextsAreRandomized) {
  Rng rng(15);
  const BigUInt c1 = scheme().encrypt(BigUInt(5), rng);
  const BigUInt c2 = scheme().encrypt(BigUInt(5), rng);
  EXPECT_NE(c1, c2);  // semantic security: same plaintext, fresh randomness
}

TEST_F(PaillierFixture, PlaintextTooLargeThrows) {
  Rng rng(16);
  const BigUInt too_big = scheme().pub().n + BigUInt(1);
  EXPECT_THROW(scheme().encrypt(too_big, rng), std::runtime_error);
}

TEST(PaillierVector, TensorSumRoundtrip) {
  Rng rng(17);
  of::privacy::PaillierVector vec(192, /*max_summands=*/16, rng);
  Rng enc_rng(18);
  const Tensor a = Tensor::from_vector({1.5f, -2.25f, 0.0f, 100.0f, -0.001f});
  const Tensor b = Tensor::from_vector({-1.0f, 2.0f, 3.5f, -50.0f, 0.5f});
  std::vector<BigUInt> acc;
  vec.accumulate(acc, vec.encrypt(a, enc_rng));
  vec.accumulate(acc, vec.encrypt(b, enc_rng));
  const Tensor sum = vec.decrypt_sum(acc, 5, 2);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(sum[i], a[i] + b[i], 1e-3f);
}

TEST(PaillierVector, ManySummands) {
  Rng rng(19);
  of::privacy::PaillierVector vec(192, 64, rng);
  Rng enc_rng(20);
  std::vector<BigUInt> acc;
  const int k = 12;
  Tensor expected({7});
  Rng data_rng(21);
  for (int i = 0; i < k; ++i) {
    const Tensor t = Tensor::randn({7}, data_rng);
    expected.add_(t);
    vec.accumulate(acc, vec.encrypt(t, enc_rng));
  }
  const Tensor sum = vec.decrypt_sum(acc, 7, k);
  EXPECT_TRUE(sum.allclose(expected, 1e-2f, 1e-3f));
}

TEST(PaillierVector, PacksMultipleValuesPerCiphertext) {
  Rng rng(22);
  of::privacy::PaillierVector vec(256, 16, rng);
  EXPECT_GE(vec.values_per_ciphertext(), 3u);
}

// --- differential privacy -----------------------------------------------------------

TEST(Dp, SigmaCalibration) {
  of::privacy::DpParams p{1.0, 1e-5, 1.0};
  // σ = C·√(2 ln(1.25/δ))/ε ≈ 4.84 for these parameters.
  EXPECT_NEAR(of::privacy::gaussian_sigma(p), 4.84, 0.02);
  p.epsilon = 10.0;
  EXPECT_NEAR(of::privacy::gaussian_sigma(p), 0.484, 0.002);
}

TEST(Dp, HigherEpsilonLessNoise) {
  of::privacy::DpParams lo{1.0, 1e-5, 1.0}, hi{10.0, 1e-5, 1.0};
  EXPECT_GT(of::privacy::gaussian_sigma(lo), of::privacy::gaussian_sigma(hi));
}

TEST(Dp, NoiseStdMatchesCalibration) {
  of::privacy::DpParams p{2.0, 1e-5, 1.0};
  of::privacy::DifferentialPrivacy dp(p, 23);
  const std::size_t n = 50000;
  const Tensor zero({n});
  const Bytes out = dp.protect(zero, 0, 1);
  const Tensor noised = of::tensor::deserialize_tensor(out);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) var += noised[i] * noised[i];
  var /= n;
  const double sigma = of::privacy::gaussian_sigma(p);
  EXPECT_NEAR(std::sqrt(var), sigma, sigma * 0.05);
}

TEST(Dp, ClippingBoundsSensitivity) {
  of::privacy::DpParams p{1000.0, 1e-5, 1.0};  // near-zero noise isolates the clip
  of::privacy::DifferentialPrivacy dp(p, 24);
  Tensor big = Tensor::full({100}, 10.0f);  // ‖·‖₂ = 100 ≫ clip 1.0
  const Tensor out = of::tensor::deserialize_tensor(dp.protect(big, 0, 1));
  EXPECT_NEAR(out.l2_norm(), 1.0f, 0.05f);
}

TEST(Dp, AccountantComposes) {
  of::privacy::CompositionAccountant acc;
  for (int i = 0; i < 10; ++i) acc.record_release(0.1, 1e-6);
  EXPECT_NEAR(acc.basic_epsilon(), 1.0, 1e-9);
  EXPECT_NEAR(acc.basic_delta(), 1e-5, 1e-12);
  EXPECT_EQ(acc.releases(), 10u);
  // Advanced composition beats basic for many small releases.
  of::privacy::CompositionAccountant many;
  for (int i = 0; i < 1000; ++i) many.record_release(0.01, 1e-8);
  EXPECT_LT(many.advanced_epsilon(1e-6), many.basic_epsilon());
}

TEST(Dp, AggregateSumIsPlainSum) {
  of::privacy::DpParams p{1.0, 1e-5, 10.0};
  of::privacy::DifferentialPrivacy dp(p, 25);
  of::privacy::NoPrivacy none;
  const Tensor a = Tensor::from_vector({1, 2});
  const Tensor b = Tensor::from_vector({3, 4});
  const Tensor sum = none.aggregate_sum(
      {none.protect(a, 0, 2), none.protect(b, 1, 2)}, 2);
  EXPECT_FLOAT_EQ(sum[0], 4.0f);
  EXPECT_FLOAT_EQ(sum[1], 6.0f);
}

// --- secure aggregation --------------------------------------------------------------

class SecureAggSweep : public ::testing::TestWithParam<int> {};

TEST_P(SecureAggSweep, MasksCancelExactly) {
  const int k = GetParam();
  of::privacy::SecureAggregation sa("test-key", k);
  Rng rng(26);
  std::vector<Tensor> updates;
  Tensor expected({32});
  for (int i = 0; i < k; ++i) {
    updates.push_back(Tensor::randn({32}, rng));
    expected.add_(updates.back());
  }
  std::vector<Bytes> protected_updates;
  for (int i = 0; i < k; ++i)
    protected_updates.push_back(sa.protect(updates[static_cast<std::size_t>(i)], i, k));
  const Tensor sum = sa.aggregate_sum(protected_updates, 32);
  // Fixed-point quantization error only: k · 2^-16 per coordinate.
  EXPECT_TRUE(sum.allclose(expected, static_cast<float>(k) * 2e-5f + 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(CohortSizes, SecureAggSweep, ::testing::Values(1, 2, 3, 8, 16));

TEST(SecureAgg, IndividualUpdateLooksRandom) {
  const int k = 4;
  of::privacy::SecureAggregation sa("test-key", k);
  const Tensor zeros({1000});
  const Bytes b = sa.protect(zeros, 0, k);
  // Interpret the masked payload: values should be spread over uint64, not
  // concentrated near the tiny fixed-point encodings of 0.
  std::size_t off = 8;  // skip the length header
  std::size_t large = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto v = of::tensor::read_pod<std::uint64_t>(b, off);
    if (v > (1ULL << 32)) ++large;
  }
  EXPECT_GT(large, 400u);  // ≈half of uniformly random values exceed 2^32
}

TEST(SecureAgg, PairSeedsSymmetric) {
  of::privacy::SecureAggregation sa("k", 5);
  EXPECT_EQ(sa.pair_seed(1, 3), sa.pair_seed(3, 1));
  EXPECT_NE(sa.pair_seed(1, 3), sa.pair_seed(1, 4));
}

TEST(SecureAgg, DifferentGroupKeysDifferentMasks) {
  of::privacy::SecureAggregation a("key-a", 3), b("key-b", 3);
  EXPECT_NE(a.pair_seed(0, 1), b.pair_seed(0, 1));
}

TEST(SecureAgg, DiffieHellmanModeCancelsToo) {
  const int k = 3;
  of::privacy::SecureAggregation sa("unused", k,
                                    of::privacy::SaKeyAgreement::DiffieHellman);
  Rng rng(27);
  std::vector<Bytes> frames;
  Tensor expected({16});
  for (int i = 0; i < k; ++i) {
    const Tensor t = Tensor::randn({16}, rng);
    expected.add_(t);
    frames.push_back(sa.protect(t, i, k));
  }
  EXPECT_TRUE(sa.aggregate_sum(frames, 16).allclose(expected, 1e-3f, 1e-3f));
}

TEST(SecureAgg, CohortMismatchThrows) {
  of::privacy::SecureAggregation sa("k", 4);
  EXPECT_THROW(sa.protect(Tensor({4}), 0, 5), std::runtime_error);
  EXPECT_THROW(sa.protect(Tensor({4}), 4, 4), std::runtime_error);
}

// --- Diffie–Hellman -------------------------------------------------------------------

TEST(DiffieHellman, SharedKeySymmetry) {
  const auto group = of::privacy::DhGroup::default_group();
  Rng rng(28);
  of::privacy::DhParty alice(group, rng), bob(group, rng);
  EXPECT_EQ(alice.shared_key(bob.public_value()), bob.shared_key(alice.public_value()));
}

TEST(DiffieHellman, ThirdPartyGetsDifferentKey) {
  const auto group = of::privacy::DhGroup::default_group();
  Rng rng(29);
  of::privacy::DhParty alice(group, rng), bob(group, rng), eve(group, rng);
  EXPECT_NE(alice.shared_key(bob.public_value()), alice.shared_key(eve.public_value()));
}

TEST(DiffieHellman, GroupPrimeIsPrime) {
  Rng rng(30);
  EXPECT_TRUE(BigUInt::is_probable_prime(of::privacy::DhGroup::default_group().p, rng));
  EXPECT_EQ(of::privacy::DhGroup::default_group().p.bit_length(), 384u);
}

// --- HE mechanism + registry -----------------------------------------------------------

TEST(HeMechanism, EndToEndSum) {
  of::privacy::HomomorphicEncryption he(160, 8, 31);
  Rng rng(32);
  const Tensor a = Tensor::randn({20}, rng);
  const Tensor b = Tensor::randn({20}, rng);
  const Tensor sum =
      he.aggregate_sum({he.protect(a, 0, 2), he.protect(b, 1, 2)}, 20);
  EXPECT_TRUE(sum.allclose(a + b, 1e-2f, 1e-3f));
}

TEST(HeMechanism, SharedKeygenSeedInteroperates) {
  // Two mechanism instances with the same keygen seed (different enc seeds)
  // must produce mutually aggregatable ciphertexts — the Engine relies on it.
  of::privacy::HomomorphicEncryption client_a(160, 8, 77, 1001);
  of::privacy::HomomorphicEncryption client_b(160, 8, 77, 1002);
  of::privacy::HomomorphicEncryption server(160, 8, 77, 1003);
  Rng rng(33);
  const Tensor a = Tensor::randn({10}, rng);
  const Tensor b = Tensor::randn({10}, rng);
  const Tensor sum =
      server.aggregate_sum({client_a.protect(a, 0, 2), client_b.protect(b, 1, 2)}, 10);
  EXPECT_TRUE(sum.allclose(a + b, 1e-2f, 1e-3f));
}

TEST(Registry, AllMechanismsConstructFromConfig) {
  auto dp_cfg = of::config::parse_yaml(
      "_target_: src.omnifed.privacy.DifferentialPrivacy\nepsilon: 1.0\ndelta: 1.0e-5\n");
  EXPECT_EQ(of::privacy::make_mechanism(dp_cfg)->name(), "DifferentialPrivacy");
  auto sa_cfg = of::config::parse_yaml(
      "_target_: SecureAggregation\nnum_clients: 4\n");
  EXPECT_EQ(of::privacy::make_mechanism(sa_cfg)->name(), "SecureAggregation");
  auto he_cfg = of::config::parse_yaml(
      "_target_: HomomorphicEncryption\nkey_bits: 128\n");
  EXPECT_EQ(of::privacy::make_mechanism(he_cfg)->name(), "HomomorphicEncryption");
  auto none_cfg = of::config::parse_yaml("_target_: NoPrivacy\n");
  EXPECT_EQ(of::privacy::make_mechanism(none_cfg)->name(), "NoPrivacy");
}

}  // namespace
