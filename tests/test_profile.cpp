// of::obs tier-two tests (DESIGN.md §16): the sampling profiler's disabled
// fast path (zero heap allocations), live capture + collapsed-stack golden
// output under an injected symbolizer, round critical-path attribution (an
// injected Delay straggler must be blamed on `compute`), the flight
// recorder's dump schema, and an end-to-end TCP fleet run joining all three
// against a real straggler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "net_util.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

// --- global allocation counter -----------------------------------------------
// Same TU-level operator-new override as test_obs: counts every heap
// allocation in the binary so the disabled-path test can assert zero.

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using of::config::ConfigNode;
using of::config::parse_yaml;
using of::core::Engine;
using of::core::RunResult;
using of::obs::Attribution;
using of::obs::Cause;
using of::obs::Fleet;
using of::obs::FlightRecConfig;
using of::obs::FlightRecorder;
using of::obs::Name;
using of::obs::PhaseDigest;
using of::obs::ProfileConfig;
using of::obs::Profiler;
using of::obs::ProfileSample;
using of::obs::ScopedSpan;
using of::obs::TraceRecorder;

// Structural JSON sanity: balanced braces/brackets outside string literals.
// Not a parser — enough to catch a truncated dump or an unescaped quote.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- profiler: disabled fast path ----------------------------------------------

TEST(Profiler, DisabledPathIsAllocationFree) {
  auto& p = Profiler::global();
  ASSERT_FALSE(p.enabled());
  constexpr int kIters = 1000000;
  bool saw_enabled = false;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i)
    if (p.enabled()) saw_enabled = true;
  const double ns_per =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
          .count() /
      kIters;
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - a0, 0u)
      << "disabled enabled() check allocated";
  EXPECT_FALSE(saw_enabled);
  // Budget is ≤10 ns (one relaxed load; see bench_obs_overhead and
  // EXPERIMENTS.md) — assert a loose multiple so a lock or syscall sneaking
  // in fails even on a noisy CI host.
  EXPECT_LT(ns_per, 100.0) << "disabled path cost " << ns_per << " ns/call";
}

// --- profiler: live capture -----------------------------------------------------

TEST(Profiler, CapturesStacksWhileBusyAndLabelsLanes) {
  ProfileConfig cfg;
  cfg.enabled = true;
  cfg.hz = 250;
  cfg.max_frames = 16;
  cfg.ring_capacity = 512;
  auto& p = Profiler::global();
  Profiler::set_thread_name("proftest");
  p.start(cfg);
  // ITIMER_PROF counts CPU time, so burn cycles (a sleep would never get
  // sampled). Loop until a few samples land or a generous wall deadline.
  volatile double sink = 1.0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (p.samples_total() < 5 && std::chrono::steady_clock::now() < deadline)
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
  p.stop();
  ASSERT_GE(p.samples_total(), 5u);

  const auto snap = p.snapshot();
  ASSERT_FALSE(snap.empty());
  for (const auto& s : snap) {
    EXPECT_GT(s.depth, 0u);
    EXPECT_LE(s.depth, Profiler::kMaxFrames);
  }
  // Snapshot is time-ordered.
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_GE(snap[i].ts_ns, snap[i - 1].ts_ns);

  // The collapsed export names this thread's lane and every line ends in a
  // count.
  const std::string folded = p.collapsed_text();
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("proftest"), std::string::npos);
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::strtoull(line.c_str() + sp + 1, nullptr, 10), 0u) << line;
  }
}

TEST(Profiler, CollapseGoldenWithInjectedSymbolizer) {
  auto mk = [](std::uint32_t lane, std::initializer_list<std::uintptr_t> pcs) {
    ProfileSample s{};
    s.lane = lane;
    s.depth = static_cast<std::uint32_t>(pcs.size());
    std::size_t i = 0;
    for (const auto pc : pcs) s.frames[i++] = reinterpret_cast<void*>(pc);
    return s;
  };
  // frames[0] is the leaf: {0xB, 0xA} is a stack where fa called fb.
  const std::vector<ProfileSample> samples = {
      mk(0, {0xB, 0xA}), mk(0, {0xB, 0xA}), mk(0, {0xC, 0xA}), mk(1, {0xA})};
  const auto sym = [](void* pc) -> std::string {
    switch (reinterpret_cast<std::uintptr_t>(pc)) {
      case 0xA: return "fa";
      case 0xB: return "fb";
      default: return "fc";
    }
  };
  const std::string folded = Profiler::collapse(samples, {"main", "worker"}, sym);
  EXPECT_EQ(folded, "main;fa;fb 2\nmain;fa;fc 1\nworker;fa 1\n");
}

// --- attribution ----------------------------------------------------------------

// Phase digest indices (obs/context.hpp): 0=train 1=encode 2=send 3=recv
// 4=decode.
void set_phase(PhaseDigest (&phases)[of::obs::kPhaseCount], std::size_t i,
               std::uint64_t total_ns) {
  phases[i].count = 1;
  phases[i].total_ns = total_ns;
  phases[i].max_ns = total_ns;
}

TEST(Attribution, NamesDelayedStragglerComputeBound) {
  Attribution attr;
  PhaseDigest fast[of::obs::kPhaseCount] = {};
  set_phase(fast, 0, 10000000);  // 10 ms train
  set_phase(fast, 2, 2000000);   // 2 ms send
  attr.observe_client(1, 0, fast, 0x111);

  PhaseDigest slow[of::obs::kPhaseCount] = {};
  set_phase(slow, 0, 510000000);  // 510 ms train — the injected Delay stall
  set_phase(slow, 2, 2000000);
  attr.observe_client(2, 0, slow, 0x222);

  const auto cp = attr.on_round(0, 0.6, 0.005);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->round, 0u);
  EXPECT_EQ(cp->client, 2);
  EXPECT_EQ(cp->cause, Cause::Compute);
  EXPECT_NEAR(cp->cause_seconds, 0.51, 1e-9);
  EXPECT_NEAR(cp->client_seconds, 0.512, 1e-9);
  EXPECT_EQ(cp->exemplar_span, 0x222u);

  // Histograms saw one round per client, exemplars kept.
  const auto& hists = attr.client_hists();
  ASSERT_EQ(hists.size(), 2u);
  EXPECT_EQ(hists.at(1).count, 1u);
  EXPECT_EQ(hists.at(2).last_span, 0x222u);
}

TEST(Attribution, AggregateDominanceBlamesTheCoordinator) {
  Attribution attr;
  PhaseDigest fast[of::obs::kPhaseCount] = {};
  set_phase(fast, 0, 5000000);
  attr.observe_client(1, 3, fast, 0x333);
  const auto cp = attr.on_round(3, 1.0, 0.9);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->client, -1);
  EXPECT_EQ(cp->cause, Cause::Aggregate);
  EXPECT_NEAR(cp->cause_seconds, 0.9, 1e-9);
  EXPECT_EQ(cp->exemplar_span, 0u);
}

TEST(Attribution, FallsBackToLatestClientRowsWhenRoundNeverReported) {
  // Async/serve tiers record coordinator rounds the clients never named:
  // the join falls back to each client's most recent row.
  Attribution attr;
  PhaseDigest d[of::obs::kPhaseCount] = {};
  set_phase(d, 3, 80000000);  // 80 ms waiting on the queue
  attr.observe_client(4, 7, d, 0x444);
  const auto cp = attr.on_round(99, 0.1, 0.001);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->client, 4);
  EXPECT_EQ(cp->cause, Cause::QueueWait);
}

// --- flight recorder ------------------------------------------------------------

TEST(FlightRecorder, DumpSchemaRoundTrips) {
  auto& rec = TraceRecorder::global();
  rec.reset(64);
  rec.set_enabled(true);
  {
    ScopedSpan span(Name::LocalTrain, 1, 7, 42);
  }
  of::obs::instant(Name::DeadlineCut, 0, 7, 1);
  rec.set_enabled(false);  // events stay in the rings for the dump

  FlightRecConfig cfg;
  cfg.enabled = true;
  cfg.path_prefix = ::testing::TempDir() + "of_fr_unit";
  cfg.on_signal = false;  // don't disturb gtest's signal dispositions
  auto& fr = FlightRecorder::global();
  fr.arm(cfg, "obs:\n  enabled: true\n", 0xabcdefULL);
  const std::string path = fr.dump("unit_test");
  EXPECT_EQ(fr.dumps_total(), 1u);
  fr.disarm();
  ASSERT_EQ(path, cfg.path_prefix + "-unit_test.json");

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(json_balanced(json)) << json;
  for (const char* key :
       {"\"reason\":\"unit_test\"", "\"signal\":0", "\"trace_id\":\"0xabcdef\"",
        "\"dump_wall_ns\":", "\"events\":[", "\"profile\":[", "\"config\":\"",
        "\"name\":\"local_train\"", "\"name\":\"fault.deadline_cut\"",
        "\"node\":1", "\"round\":7", "enabled: true"})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  std::remove(path.c_str());
}

// --- end to end -----------------------------------------------------------------

TEST(EngineProfileE2E, DelayStragglerIsAttributedAndFlightRecorded) {
  const std::string prefix = ::testing::TempDir() + "of_fr_e2e";
  ConfigNode cfg = parse_yaml(R"(
seed: 7
topology:
  _target_: CentralizedTopology
  num_clients: 3
  inner_comm:
    _target_: GrpcCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: FedAvg
  global_rounds: 2
  local_epochs: 1
  lr: 0.05
fault:
  enabled: true
  min_clients: 1
  round_deadline_seconds: 30.0
  injections:
    - kind: delay
      client: 2
      round: 1
      delay_seconds: 0.4
obs:
  enabled: true
  telemetry: true
  profile:
    enabled: true
    hz: 97
  flightrec:
    enabled: true
    on_signal: false
    on_fault: true
)");
  cfg.set_path("topology.inner_comm.port",
               ConfigNode::integer(of::testutil::ephemeral_port()));
  cfg.set_path("obs.flightrec.path_prefix", ConfigNode::string(prefix));
  Engine engine(cfg);
  const RunResult r = engine.run();
  ASSERT_EQ(r.rounds.size(), 2u);
  // Deadline is generous: the straggler is outwaited, not dropped, so its
  // round-1 telemetry (with the delay spanned as train time) reaches the
  // coordinator.
  EXPECT_TRUE(r.rounds[1].dropped_ranks.empty());

  const auto cp = Fleet::global().critical_path();
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->round, 1u);
  EXPECT_EQ(cp->client, 2) << "straggler not identified";
  EXPECT_EQ(cp->cause, Cause::Compute) << "injected stall not blamed on compute";
  EXPECT_GE(cp->cause_seconds, 0.35);
  EXPECT_NE(cp->exemplar_span, 0u) << "v2 wire should carry the round span id";

  // The per-client latency histograms cover every client, and the health
  // page names the verdict.
  EXPECT_EQ(Fleet::global().client_hists().size(), 3u);
  const std::string health = Fleet::global().health_text();
  EXPECT_NE(health.find("critical path:"), std::string::npos) << health;
  EXPECT_NE(health.find("cause compute"), std::string::npos) << health;

  // The injected fault triggered a flight-recorder dump on the straggler's
  // thread; it parses and holds the straggler's final spans.
  const std::string path = prefix + "-fault_delay.json";
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty()) << path << " missing";
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"reason\":\"fault_delay\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"local_train\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":2"), std::string::npos)
      << "straggler's spans missing from the dump";
  std::remove(path.c_str());
}

}  // namespace
