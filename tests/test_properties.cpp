// Cross-module property tests: randomized invariants that tie substrates
// together (DESIGN.md §5). Each property runs over a seed sweep via
// parameterized gtest.
#include <gtest/gtest.h>

#include "compression/compressor.hpp"
#include "compression/powersgd.hpp"
#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"
#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "core/payload.hpp"
#include "data/partition.hpp"
#include "exec/pool.hpp"
#include "privacy/biguint.hpp"
#include "privacy/he.hpp"
#include "privacy/secure_agg.hpp"

namespace {

using of::config::ConfigNode;
using of::privacy::BigUInt;
using of::tensor::Rng;
using of::tensor::Tensor;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// --- random config tree ↔ YAML fixpoint ------------------------------------------

ConfigNode random_node(Rng& rng, int depth) {
  const int kind = depth <= 0 ? static_cast<int>(rng.next_below(4))
                              : static_cast<int>(rng.next_below(6));
  switch (kind) {
    case 0: return ConfigNode::integer(static_cast<std::int64_t>(rng.next_u64() >> 40) - 1000);
    case 1: return ConfigNode::floating(rng.uniform(-10.0, 10.0));
    case 2: return ConfigNode::boolean(rng.bernoulli(0.5));
    case 3: {
      // Strings that stress the quoting rules.
      static const char* pool[] = {"plain", "needs: quoting", "1000x", "true",
                                   "-dash", "sp ace", "", "a#b", "{curly}"};
      return ConfigNode::string(pool[rng.next_below(9)]);
    }
    case 4: {
      ConfigNode list = ConfigNode::list();
      const std::size_t n = rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i) list.push_back(random_node(rng, depth - 1));
      return list;
    }
    default: {
      ConfigNode map = ConfigNode::map();
      const std::size_t n = rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i)
        map["key" + std::to_string(i)] = random_node(rng, depth - 1);
      return map;
    }
  }
}

TEST_P(SeedSweep, YamlDumpParseFixpoint) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    ConfigNode root = ConfigNode::map();
    root["payload"] = random_node(rng, 3);
    const ConfigNode reparsed = of::config::parse_yaml(root.dump());
    EXPECT_TRUE(root == reparsed) << root.dump();
  }
}

// --- BigUInt ring axioms ------------------------------------------------------------

TEST_P(SeedSweep, BigUIntRingAxioms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const BigUInt a = BigUInt::random_bits(1 + rng.next_below(200), rng);
    const BigUInt b = BigUInt::random_bits(1 + rng.next_below(200), rng);
    const BigUInt c = BigUInt::random_bits(1 + rng.next_below(200), rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(SeedSweep, BigUIntShiftMulEquivalence) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const BigUInt a = BigUInt::random_bits(1 + rng.next_below(150), rng);
    const std::size_t s = rng.next_below(80);
    EXPECT_EQ(a << s, a * BigUInt::powmod(BigUInt(2), BigUInt(s),
                                          BigUInt(1) << (s + 200)));
  }
}

// --- compressor contracts ------------------------------------------------------------

std::unique_ptr<of::compression::Compressor> codec_for(std::size_t which,
                                                       std::uint64_t seed) {
  using namespace of::compression;
  switch (which % 7) {
    case 0: return std::make_unique<TopK>(20.0, true);
    case 1: return std::make_unique<RandomK>(20.0, true, seed);
    case 2: return std::make_unique<DGC>(20.0, true, seed);
    case 3: return std::make_unique<RedSync>(20.0, true);
    case 4: return std::make_unique<SIDCo>(20.0, true);
    case 5: return std::make_unique<QSGD>(8, seed);
    default: return std::make_unique<PowerSGD>(8, seed);
  }
}

TEST_P(SeedSweep, EveryCodecPreservesShapeAndShrinksError) {
  Rng rng(GetParam());
  for (std::size_t which = 0; which < 7; ++which) {
    auto codec = codec_for(which, GetParam());
    const Tensor t = Tensor::randn({3000}, rng);
    const Tensor out = codec->decompress(codec->compress(t));
    ASSERT_EQ(out.numel(), t.numel()) << codec->name();
    EXPECT_GT(out.l2_norm(), 0.0f) << codec->name();
    // Reconstruction must carry signal: error below the trivial all-zero
    // reconstruction (= ‖t‖). RandomK is exempt — its n/k rescaling is
    // unbiased in expectation but inflates per-draw L2 error by design.
    if (codec->name() != "RandomK")
      EXPECT_LT((out - t).l2_norm(), t.l2_norm() * 1.05f) << codec->name();
    else
      EXPECT_GT(out.dot(t), 0.0f);  // still positively aligned with the input
  }
}

TEST_P(SeedSweep, ErrorFeedbackResidualInvariant) {
  // For any inner codec: input + old_residual == reconstruction + new_residual.
  Rng rng(GetParam());
  for (std::size_t which = 0; which < 7; ++which) {
    of::compression::ErrorFeedbackCompressor ef(codec_for(which, GetParam()));
    for (int round = 0; round < 3; ++round) {
      const Tensor g = Tensor::randn({500}, rng);
      Tensor pre = g;
      if (!ef.residual().empty()) pre.add_(ef.residual());
      const Tensor out = ef.decompress(ef.compress(g));
      Tensor sum = out;
      sum.add_(ef.residual());
      EXPECT_TRUE(sum.allclose(pre, 1e-3f, 1e-3f)) << ef.name();
    }
  }
}

// --- privacy mechanisms agree with the plain mean --------------------------------------

TEST_P(SeedSweep, SecureAggregationMatchesPlainMean) {
  Rng rng(GetParam());
  const int k = 2 + static_cast<int>(rng.next_below(6));
  of::privacy::SecureAggregation sa("prop", k);
  of::core::PayloadPlugins sa_plugins;
  sa_plugins.privacy = &sa;
  std::vector<of::tensor::Bytes> sa_frames, plain_frames;
  for (int i = 0; i < k; ++i) {
    std::vector<Tensor> payload{Tensor::randn({64}, rng)};
    sa_frames.push_back(of::core::encode_update(payload, 1.0, sa_plugins, i, k));
    plain_frames.push_back(of::core::encode_update(payload, 1.0, {}, i, k));
  }
  const auto sa_mean = of::core::mean_updates(sa_frames, nullptr, &sa);
  const auto plain_mean = of::core::mean_updates(plain_frames, nullptr, nullptr);
  EXPECT_TRUE(sa_mean[0].allclose(plain_mean[0], 1e-3f, 1e-3f));
}

TEST_P(SeedSweep, HomomorphicMeanMatchesPlainMean) {
  Rng rng(GetParam());
  of::privacy::HomomorphicEncryption he(128, 8, GetParam() + 1);
  of::core::PayloadPlugins he_plugins;
  he_plugins.privacy = &he;
  const int k = 3;
  std::vector<of::tensor::Bytes> he_frames, plain_frames;
  for (int i = 0; i < k; ++i) {
    std::vector<Tensor> payload{Tensor::randn({12}, rng)};
    he_frames.push_back(of::core::encode_update(payload, 1.0, he_plugins, i, k));
    plain_frames.push_back(of::core::encode_update(payload, 1.0, {}, i, k));
  }
  const auto he_mean = of::core::mean_updates(he_frames, nullptr, &he);
  const auto plain_mean = of::core::mean_updates(plain_frames, nullptr, nullptr);
  EXPECT_TRUE(he_mean[0].allclose(plain_mean[0], 2e-2f, 1e-2f));
}

// --- partitions cover exactly, for random shapes ----------------------------------------

TEST_P(SeedSweep, PartitionsAlwaysCoverExactlyOnce) {
  Rng rng(GetParam());
  const std::size_t classes = 2 + rng.next_below(20);
  const std::size_t per_class = 10 + rng.next_below(30);
  std::vector<std::size_t> labels;
  for (std::size_t c = 0; c < classes; ++c)
    for (std::size_t i = 0; i < per_class; ++i) labels.push_back(c);
  const std::size_t clients = 2 + rng.next_below(8);
  for (const char* scheme : {"iid", "dirichlet", "shards"}) {
    of::data::PartitionIndices parts;
    if (std::string(scheme) == "iid")
      parts = of::data::iid_partition(labels.size(), clients, GetParam());
    else if (std::string(scheme) == "dirichlet")
      parts = of::data::dirichlet_partition(labels, classes, clients, 0.3, GetParam());
    else
      parts = of::data::shard_partition(labels, clients, 2, GetParam());
    std::vector<std::size_t> all;
    for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), labels.size()) << scheme;
    for (std::size_t i = 0; i < all.size(); ++i) ASSERT_EQ(all[i], i) << scheme;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

// --- end-to-end execution determinism ---------------------------------------------------

// The of::exec contract (DESIGN.md §8): chunk decomposition depends only on
// (size, grain), reductions always fold partials in fixed chunk order, and
// parallel aggregation preserves per-coordinate frame order. Consequence: the
// entire federated run — final model bytes AND the metric trace — is bitwise
// identical whether the pool has 1 thread or 4.
TEST(ExecDeterminism, FullRunBitwiseIdenticalAcrossThreadCounts) {
  const auto run_with_threads = [](std::int64_t threads) {
    ConfigNode cfg = of::config::parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 3
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
)");
    cfg.set_path("exec.threads", ConfigNode::integer(threads));
    of::core::Engine engine(std::move(cfg));
    return engine.run();
  };

  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  of::exec::Pool::global().configure(1);  // leave later tests serial

  ASSERT_FALSE(serial.final_model_bytes.empty());
  ASSERT_EQ(serial.final_model_bytes.size(), parallel.final_model_bytes.size());
  EXPECT_TRUE(serial.final_model_bytes == parallel.final_model_bytes)
      << "final model diverged between threads=1 and threads=4";
  EXPECT_EQ(serial.to_metrics_csv(), parallel.to_metrics_csv());
}

}  // namespace
