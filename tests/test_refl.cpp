// of::refl tests (DESIGN.md §13): field-descriptor iteration, generated
// config parsing (defaults / required / ranges / unknown keys / strict
// opt-out), to_node round-trips, TLV wire round-trips with byte goldens,
// mixed-version forward/backward compatibility in both directions (old
// reader skips new fields; new reader defaults missing ones), the
// TelemetrySummary v2 tail + v1 fallback, combiner partial-header framing,
// JSON rendering, and the engine-level strict-config gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "config/yaml.hpp"
#include "core/config_check.hpp"
#include "core/engine.hpp"
#include "core/frame_pool.hpp"
#include "core/payload.hpp"
#include "obs/telemetry.hpp"
#include "refl/config_io.hpp"
#include "refl/json.hpp"
#include "refl/refl.hpp"
#include "refl/tlv.hpp"

namespace refltest {

enum class Color { Red, Green, Blue };

struct Inner {
  int depth = 1;
  std::string label = "leaf";
};

// The "current" schema...
struct V2 {
  bool flag = false;
  std::uint32_t count = 0;
  std::int64_t offset = 0;
  double ratio = 1.0;
  std::string name = "v2";
  Color color = Color::Red;
  std::vector<std::uint32_t> parts;
  Inner inner;
};

// ...and tomorrow's: one extra field with a fresh tag. Everything else
// matches V2 tag-for-tag.
struct V3 {
  bool flag = false;
  std::uint32_t count = 0;
  std::int64_t offset = 0;
  double ratio = 1.0;
  std::string name = "v2";
  Color color = Color::Red;
  std::vector<std::uint32_t> parts;
  Inner inner;
  std::uint64_t extra = 0;
};

}  // namespace refltest

template <>
struct of::refl::EnumNames<refltest::Color> {
  static constexpr std::pair<refltest::Color, const char*> names[] = {
      {refltest::Color::Red, "red"},
      {refltest::Color::Green, "green"},
      {refltest::Color::Blue, "blue"},
  };
};

template <>
struct of::refl::Reflect<refltest::Inner> {
  OF_REFL_FIELDS(field("depth", &refltest::Inner::depth, 1).ge(0),
                 field("label", &refltest::Inner::label, 2))
};

template <>
struct of::refl::Reflect<refltest::V2> {
  OF_REFL_FIELDS(field("flag", &refltest::V2::flag, 1),
                 field("count", &refltest::V2::count, 2).req().ge(0).le(1000),
                 field("offset", &refltest::V2::offset, 3),
                 field("ratio", &refltest::V2::ratio, 4).gt(0).lt(10),
                 field("name", &refltest::V2::name, 5).label(),
                 field("color", &refltest::V2::color, 6),
                 field("parts", &refltest::V2::parts, 7),
                 field("inner", &refltest::V2::inner, 8))
};

template <>
struct of::refl::Reflect<refltest::V3> {
  OF_REFL_FIELDS(field("flag", &refltest::V3::flag, 1),
                 field("count", &refltest::V3::count, 2),
                 field("offset", &refltest::V3::offset, 3),
                 field("ratio", &refltest::V3::ratio, 4),
                 field("name", &refltest::V3::name, 5).label(),
                 field("color", &refltest::V3::color, 6),
                 field("parts", &refltest::V3::parts, 7),
                 field("inner", &refltest::V3::inner, 8),
                 field("extra", &refltest::V3::extra, 9))
};

namespace {

using namespace refltest;
using of::config::ConfigNode;
using of::config::parse_yaml;
using of::obs::TelemetrySummary;

V2 sample_v2() {
  V2 v;
  v.flag = true;
  v.count = 42;
  v.offset = -7;
  v.ratio = 2.5;
  v.name = "alpha";
  v.color = Color::Blue;
  v.parts = {3, 1, 4, 1, 5};
  v.inner.depth = 9;
  v.inner.label = "nested";
  return v;
}

// --- descriptor core -----------------------------------------------------------

TEST(ReflCore, FieldCountNamesAndTags) {
  EXPECT_EQ(of::refl::field_count<V2>(), 8u);
  const auto names = of::refl::field_names<V2>();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "flag");
  EXPECT_EQ(names.back(), "inner");

  // Tags must be unique within a descriptor — they are the wire identity.
  std::vector<int> tags;
  of::refl::for_each_field<V2>([&](const auto& f) { tags.push_back(f.tag); });
  std::sort(tags.begin(), tags.end());
  EXPECT_TRUE(std::adjacent_find(tags.begin(), tags.end()) == tags.end());
}

TEST(ReflCore, EnumNamesRoundTrip) {
  EXPECT_STREQ(of::refl::enum_to_string(Color::Green), "green");
  Color c = Color::Red;
  EXPECT_TRUE(of::refl::enum_from_string("blue", c));
  EXPECT_EQ(c, Color::Blue);
  EXPECT_FALSE(of::refl::enum_from_string("mauve", c));
  EXPECT_EQ(of::refl::enum_choices<Color>(), "red|green|blue");
}

// --- config Reader / Writer ----------------------------------------------------

TEST(ReflConfig, ParsesAllFieldKindsWithDefaults) {
  const auto v = of::refl::from_node<V2>(parse_yaml(R"(
flag: true
count: 42
ratio: 2.5
color: blue
parts: [3, 1, 4]
inner: {depth: 9, label: nested}
)"),
                                         "t");
  EXPECT_TRUE(v.flag);
  EXPECT_EQ(v.count, 42u);
  EXPECT_EQ(v.offset, 0);  // absent key keeps the member default
  EXPECT_DOUBLE_EQ(v.ratio, 2.5);
  EXPECT_EQ(v.name, "v2");
  EXPECT_EQ(v.color, Color::Blue);
  EXPECT_EQ(v.parts, (std::vector<std::uint32_t>{3, 1, 4}));
  EXPECT_EQ(v.inner.depth, 9);
  EXPECT_EQ(v.inner.label, "nested");
}

TEST(ReflConfig, RequiredRangeAndUnknownKeyErrorsCarryPaths) {
  try {
    of::refl::from_node<V2>(parse_yaml("flag: true\n"), "t");
    FAIL() << "missing required key not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("t.count"), std::string::npos) << e.what();
  }
  try {
    of::refl::from_node<V2>(parse_yaml("count: 2000\n"), "t");
    FAIL() << "range violation not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("t.count"), std::string::npos) << e.what();
  }
  try {
    of::refl::from_node<V2>(parse_yaml("count: 1\ninner: {depht: 3}\n"), "t");
    FAIL() << "nested typo not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("t.inner.depht"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(of::refl::from_node<V2>(parse_yaml("count: 1\nratio: 0\n"), "t"),
               std::runtime_error);  // gt(0) is exclusive
  EXPECT_THROW(of::refl::from_node<V2>(parse_yaml("count: 1\ncolor: mauve\n"), "t"),
               std::runtime_error);
}

TEST(ReflConfig, StrictFalseAndExtraKeysAllowUnknowns) {
  const ConfigNode n = parse_yaml("count: 1\nbogus: 1\n");
  EXPECT_THROW(of::refl::from_node<V2>(n, "t"), std::runtime_error);
  EXPECT_NO_THROW(of::refl::from_node<V2>(n, "t", {}, /*strict=*/false));
  EXPECT_NO_THROW(of::refl::from_node<V2>(n, "t", {"bogus"}));
}

TEST(ReflConfig, ToNodeRoundTripsAndMaterializesDefaults) {
  const V2 v = sample_v2();
  const ConfigNode n = of::refl::to_node(v);
  EXPECT_EQ(n.at("color").as_string(), "blue");
  EXPECT_EQ(n.at("offset").as_int(), -7);
  const V2 back = of::refl::from_node<V2>(n, "t");
  EXPECT_EQ(back.count, v.count);
  EXPECT_EQ(back.parts, v.parts);
  EXPECT_EQ(back.inner.label, v.inner.label);

  // Defaults appear explicitly — the --dump-config contract.
  const ConfigNode d = of::refl::to_node(V2{});
  EXPECT_TRUE(d.has("ratio"));
  EXPECT_TRUE(d.has("inner"));
  // And the dump re-parses through the YAML round-trip format.
  const V2 again = of::refl::from_node<V2>(parse_yaml(n.dump()), "t");
  EXPECT_EQ(again.inner.depth, v.inner.depth);
  EXPECT_DOUBLE_EQ(again.ratio, v.ratio);
}

// --- TLV wire ------------------------------------------------------------------

TEST(ReflTlv, RoundTripsEveryFieldKind) {
  const V2 v = sample_v2();
  of::refl::tlv::Bytes buf;
  of::refl::tlv::encode(v, buf);
  V2 got;
  ASSERT_TRUE(of::refl::tlv::decode(got, buf.data(), buf.size()));
  EXPECT_EQ(got.flag, v.flag);
  EXPECT_EQ(got.count, v.count);
  EXPECT_EQ(got.offset, v.offset);
  EXPECT_DOUBLE_EQ(got.ratio, v.ratio);
  EXPECT_EQ(got.name, v.name);
  EXPECT_EQ(got.color, v.color);
  EXPECT_EQ(got.parts, v.parts);
  EXPECT_EQ(got.inner.depth, v.inner.depth);
  EXPECT_EQ(got.inner.label, v.inner.label);
}

TEST(ReflTlv, ByteGoldenIsStable) {
  // The encoding is wire ABI: tag | u32 len | little-endian payload. If this
  // golden changes, every deployed decoder must still accept the old bytes.
  Inner i;
  i.depth = 2;
  i.label = "ab";
  of::refl::tlv::Bytes buf;
  of::refl::tlv::encode(i, buf);
  const std::uint8_t golden[] = {
      0x01, 0x00, 0x08, 0x00, 0x00, 0x00,              // tag 1, len 8
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // depth = 2
      0x02, 0x00, 0x02, 0x00, 0x00, 0x00,              // tag 2, len 2
      'a',  'b',
  };
  ASSERT_EQ(buf.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(buf.data(), golden, sizeof(golden)), 0);
}

TEST(ReflTlv, OldReaderSkipsNewFieldsNewReaderDefaultsMissing) {
  // v3 → v2: the extra field is an unknown tag; the old reader skips it.
  V3 v3;
  v3.count = 7;
  v3.name = "mixed";
  v3.extra = 0xFEEDFACE;
  of::refl::tlv::Bytes from_v3;
  of::refl::tlv::encode(v3, from_v3);
  V2 old_reader;
  ASSERT_TRUE(of::refl::tlv::decode(old_reader, from_v3.data(), from_v3.size()));
  EXPECT_EQ(old_reader.count, 7u);
  EXPECT_EQ(old_reader.name, "mixed");

  // v2 → v3: the missing field keeps its default.
  of::refl::tlv::Bytes from_v2;
  of::refl::tlv::encode(sample_v2(), from_v2);
  V3 new_reader;
  new_reader.extra = 123;
  ASSERT_TRUE(of::refl::tlv::decode(new_reader, from_v2.data(), from_v2.size()));
  EXPECT_EQ(new_reader.count, 42u);
  EXPECT_EQ(new_reader.extra, 123u);  // untouched
}

TEST(ReflTlv, MixedVersionPropertyBothDirections) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    V3 v3;
    v3.flag = rng() & 1;
    v3.count = static_cast<std::uint32_t>(rng() % 1000);
    v3.offset = static_cast<std::int64_t>(rng()) >> 3;
    v3.ratio = 0.25 + static_cast<double>(rng() % 1024);
    v3.name = std::string(rng() % 16, 'x');
    v3.color = static_cast<Color>(rng() % 3);
    const std::size_t np = rng() % 8;
    for (std::size_t i = 0; i < np; ++i)
      v3.parts.push_back(static_cast<std::uint32_t>(rng()));
    v3.inner.depth = static_cast<int>(rng() % 100);
    v3.extra = rng();

    of::refl::tlv::Bytes wire;
    of::refl::tlv::encode(v3, wire);

    V2 old_reader;
    ASSERT_TRUE(of::refl::tlv::decode(old_reader, wire.data(), wire.size()));
    EXPECT_EQ(old_reader.count, v3.count);
    EXPECT_EQ(old_reader.offset, v3.offset);
    EXPECT_EQ(old_reader.parts, v3.parts);
    EXPECT_EQ(old_reader.inner.depth, v3.inner.depth);

    // Re-encode through the old schema and read with the new: survivors
    // match, the dropped field falls back to default.
    of::refl::tlv::Bytes rewire;
    of::refl::tlv::encode(old_reader, rewire);
    V3 back;
    ASSERT_TRUE(of::refl::tlv::decode(back, rewire.data(), rewire.size()));
    EXPECT_EQ(back.count, v3.count);
    EXPECT_EQ(back.name, v3.name);
    EXPECT_EQ(back.extra, 0u);
  }
}

TEST(ReflTlv, RejectsTruncatedAndMalformedStreams) {
  of::refl::tlv::Bytes buf;
  of::refl::tlv::encode(sample_v2(), buf);
  for (std::size_t cut = 1; cut <= 5 && cut < buf.size(); ++cut) {
    V2 got;
    EXPECT_FALSE(of::refl::tlv::decode(got, buf.data(), buf.size() - cut))
        << "cut=" << cut;
  }
  // A fixed-width scalar record with the wrong length is malformed, not
  // silently coerced.
  of::refl::tlv::Bytes bad;
  of::refl::tlv::put_u16(bad, 2);  // count: expects 8 payload bytes
  of::refl::tlv::put_u32(bad, 3);
  bad.insert(bad.end(), {1, 2, 3});
  V2 got;
  EXPECT_FALSE(of::refl::tlv::decode(got, bad.data(), bad.size()));
}

// --- JSON Writer ---------------------------------------------------------------

TEST(ReflJson, RendersExportedFieldsByExportName) {
  const std::string js = of::refl::json::to_json(sample_v2());
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_NE(js.find("\"count\":42"), std::string::npos) << js;
  EXPECT_NE(js.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(js.find("\"color\":\"blue\""), std::string::npos);
  EXPECT_NE(js.find("\"parts\":[3,1,4,1,5]"), std::string::npos);
  EXPECT_NE(js.find("\"inner\":{\"depth\":9"), std::string::npos);
}

// --- TelemetrySummary v2 tail --------------------------------------------------

TelemetrySummary sample_summary() {
  TelemetrySummary t;
  t.trace_id = 0xABCDEF01ull;
  t.rank = 4;
  t.round = 12;
  t.clock_offset_ns = -500;
  t.rtt_ns = 80'000;
  t.bytes_sent = 1024;
  t.bytes_received = 2048;
  t.pool_hits = 6;
  t.pool_misses = 1;
  t.peak_rss_kb = 123'456;
  return t;
}

TEST(ReflTelemetry, TlvTailRoundTripsIncludingNewField) {
  const TelemetrySummary t = sample_summary();
  of::AlignedBytes frame(57, 0x11);  // fake payload ahead of the tail
  const std::size_t payload = frame.size();
  t.serialize_tlv_to(frame);
  std::size_t tail = 0;
  const auto got = TelemetrySummary::parse_tail(frame.data(), frame.size(), &tail);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(tail, frame.size() - payload);
  EXPECT_EQ(got->rank, t.rank);
  EXPECT_EQ(got->round, t.round);
  EXPECT_EQ(got->clock_offset_ns, t.clock_offset_ns);
  // peak_rss_kb exists only on the v2 wire — the field added to prove the
  // one-edit-per-new-field contract.
  EXPECT_EQ(got->peak_rss_kb, 123'456u);
}

TEST(ReflTelemetry, V1FixedTailStillParsesButDropsV2Fields) {
  TelemetrySummary t = sample_summary();
  of::AlignedBytes frame;
  t.serialize_to(frame);  // legacy fixed layout
  std::size_t tail = 0;
  const auto got = TelemetrySummary::parse_tail(frame.data(), frame.size(), &tail);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(tail, TelemetrySummary::kWireBytes);
  EXPECT_EQ(got->rank, t.rank);
  EXPECT_EQ(got->peak_rss_kb, 0u);  // not part of the frozen v1 layout
}

TEST(ReflTelemetry, FutureFieldInTailIsSkippedByCurrentReader) {
  // Build a v2 tail by hand with an extra record a future sender might add:
  // current readers must skip it and still parse everything else.
  const TelemetrySummary t = sample_summary();
  of::AlignedBytes payload;
  of::refl::tlv::encode(t, payload);
  of::refl::tlv::put_u16(payload, 0x7F00);  // unknown future tag
  of::refl::tlv::put_u32(payload, 8);
  of::refl::tlv::put_u64(payload, 0xDEAD'BEEFull);

  of::AlignedBytes frame(9, 0x22);
  const std::size_t body = frame.size();
  frame.insert(frame.end(), payload.begin(), payload.end());
  of::refl::tlv::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  of::refl::tlv::put_u16(frame, 2);      // version
  of::refl::tlv::put_u16(frame, 0);      // reserved
  of::refl::tlv::put_u32(frame, 0x3254464Fu);  // "OFT2"

  std::size_t tail = 0;
  const auto got = TelemetrySummary::parse_tail(frame.data(), frame.size(), &tail);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(tail, frame.size() - body);
  EXPECT_EQ(got->round, t.round);
  EXPECT_EQ(got->peak_rss_kb, t.peak_rss_kb);
}

// --- combiner partial header ---------------------------------------------------

TEST(ReflPartial, V2HeaderRoundTripsAndLegacyU64StillDecodes) {
  using of::core::FramePool;
  using of::core::StreamingSum;
  using of::tensor::Tensor;

  Tensor t({4});
  for (std::size_t i = 0; i < 4; ++i) t[i] = static_cast<float>(i + 1);
  const std::vector<Tensor> update = {t};

  FramePool pool;
  StreamingSum sum(pool);
  sum.add(of::core::encode_update(update, 1.0, {}, 0, 1));
  sum.add(of::core::encode_update(update, 1.0, {}, 0, 1));
  of::tensor::Bytes partial;
  sum.encode_partial_into(1.0, nullptr, partial);

  // v2 framing: "OFP2" magic, then u32 header_len of TLV header bytes.
  ASSERT_GE(partial.size(), 8u);
  EXPECT_EQ(partial[0], 'O');
  EXPECT_EQ(partial[1], 'F');
  EXPECT_EQ(partial[2], 'P');
  EXPECT_EQ(partial[3], '2');

  StreamingSum downstream(pool);
  downstream.add_partial(partial);
  EXPECT_EQ(downstream.count(), 2u);
  const auto mean = downstream.finish_mean();
  ASSERT_EQ(mean.size(), 1u);
  EXPECT_FLOAT_EQ(mean[0][0], 1.0f);

  // Legacy v1 partial: bare u64 count | update frame. Still accepted.
  of::tensor::Bytes legacy;
  const std::uint64_t count = 2;
  for (int i = 0; i < 8; ++i)
    legacy.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
  const auto frame2 = of::core::encode_update(update, 2.0, {}, 0, 1);
  legacy.insert(legacy.end(), frame2.begin(), frame2.end());
  StreamingSum old_style(pool);
  old_style.add_partial(legacy);
  EXPECT_EQ(old_style.count(), 2u);
}

// --- engine strict-config gate -------------------------------------------------

ConfigNode tiny_config() {
  return parse_yaml(R"(
seed: 3
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 2
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 1
)");
}

TEST(StrictConfig, TypoedKeysAreRejectedWithPath) {
  ConfigNode cfg = tiny_config();
  cfg.set_path("obs.ring_capcity", ConfigNode::integer(64));  // typo
  try {
    of::core::Engine engine(cfg);
    FAIL() << "typo not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("obs.ring_capcity"), std::string::npos)
        << e.what();
  }

  ConfigNode top = tiny_config();
  top["evaluation_every"] = ConfigNode::integer(1);  // top-level typo
  EXPECT_THROW(of::core::Engine{top}, std::runtime_error);
}

TEST(StrictConfig, OptOutAllowsUnknownKeys) {
  ConfigNode cfg = tiny_config();
  cfg.set_path("obs.ring_capcity", ConfigNode::integer(64));
  cfg.set_path("config.strict", ConfigNode::boolean(false));
  EXPECT_FALSE(of::core::config_strict(cfg));
  EXPECT_NO_THROW(of::core::Engine{cfg});
}

TEST(StrictConfig, EffectiveConfigMaterializesReflectedDefaults) {
  const ConfigNode eff = of::core::effective_config(tiny_config());
  EXPECT_TRUE(eff.at("exec").has("threads"));
  EXPECT_TRUE(eff.at("obs").has("telemetry_wire"));
  EXPECT_EQ(eff.at("obs").at("telemetry_wire").as_int(), 2);
  EXPECT_TRUE(eff.at("fault").has("reconnect"));
  EXPECT_TRUE(eff.at("fault").at("reconnect").has("max_attempts"));
  // User-set values survive the merge.
  EXPECT_EQ(eff.at("seed").as_int(), 3);
  // And the dump is YAML that re-parses.
  const ConfigNode re = parse_yaml(of::core::dump_effective_config(tiny_config()));
  EXPECT_EQ(re.at("obs").at("telemetry_wire").as_int(), 2);
}

// --- one descriptor, all surfaces ----------------------------------------------

TEST(ReflSurfaces, TelemetryFieldAppearsOnWireJsonPrometheusAndCsv) {
  using of::obs::Fleet;
  Fleet::global().reset(0x5eedull);
  Fleet::global().record(sample_summary());
  const std::string prom = Fleet::global().prometheus_text();
  const std::string json = Fleet::global().json_text();
  const std::string csv = Fleet::global().csv_text();

  // Every exported descriptor field shows up name-for-name on all three
  // rendered surfaces (this is the acceptance check for peak_rss_kb: it was
  // added to the descriptor once and nowhere else).
  of::refl::for_each_field<TelemetrySummary>([&](const auto& f) {
    if (f.exported == of::refl::Export::Skip) return;
    const std::string name = f.export_name();
    EXPECT_NE(json.find("\"" + name + "\":"), std::string::npos)
        << name << " missing from /fleet.json";
    if (f.exported == of::refl::Export::Label) return;
    EXPECT_NE(prom.find("of_fleet_" + name), std::string::npos)
        << name << " missing from Prometheus text";
    EXPECT_NE(csv.find(name), std::string::npos) << name << " missing from CSV";
  });
  EXPECT_NE(prom.find("of_fleet_peak_rss_kb{node=\"4\"} 123456"), std::string::npos)
      << prom;
  EXPECT_NE(json.find("\"peak_rss_kb\":123456"), std::string::npos) << json;
}

TEST(ReflSurfaces, RoundRecordCsvColumnsComeFromDescriptor) {
  of::core::RunResult r;
  of::core::RoundRecord rec;
  rec.round = 1;
  rec.train_loss = 0.5;
  rec.dropped_ranks = {7, 8};
  rec.deadline_hit = true;
  r.rounds.push_back(rec);
  const std::string csv = r.to_csv();
  EXPECT_EQ(csv.rfind("round,seconds,train_loss,accuracy,bytes_up,bytes_down,"
                      "mean_staleness,participated,dropped,deadline_hit,reconnects,"
                      "train_s,encode_s,send_s,recv_s,decode_s,aggregate_s,"
                      "broadcast_s,pool_hit_rate\n",
                      0),
            0u);
  EXPECT_NE(csv.find(",2,1,"), std::string::npos);  // dropped size, deadline 1
  const std::string det = r.to_metrics_csv();
  EXPECT_EQ(det.rfind("round,train_loss,accuracy,bytes_up,bytes_down,participated,"
                      "dropped\n",
                      0),
            0u);
}

}  // namespace
