// of::serve tests (DESIGN.md §14): the population registry, the seeded
// fraction-fit sampler (fixed-seed reproducibility is the property the
// paper's cross-device story rests on), the FedBuff staleness buffer's
// accept/reject/drain algebra, the zero-survivor edge of the streaming
// gather tiers, and full Engine runs — a churning TCP population that grows
// past the transport world size, and the `serve: sync` no-op guarantee
// (bitwise-identical to a run with no serve group at all).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comm/star.hpp"
#include "comm/tcp.hpp"
#include "net_util.hpp"
#include "config/compose.hpp"
#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "core/frame_pool.hpp"
#include "core/payload.hpp"
#include "obs/telemetry.hpp"
#include "serve/buffer.hpp"
#include "serve/registry.hpp"
#include "serve/sampler.hpp"
#include "serve/serve.hpp"

namespace {

using of::config::ConfigNode;
using of::config::parse_yaml;
using of::core::Engine;
using of::core::FramePool;
using of::core::RunResult;
using of::core::StreamingSum;
using of::core::encode_update;
using of::serve::ClientSampler;
using of::serve::PopulationRegistry;
using of::serve::ServeConfig;
using of::serve::StalenessBuffer;
using of::tensor::Bytes;
using of::tensor::Tensor;

namespace star = of::comm::star;

// --- sampler ------------------------------------------------------------------

TEST(ClientSamplerTest, TargetCountIsCeilOfFractionTimesAlive) {
  EXPECT_EQ(ClientSampler::target_count(0, 0.5), 0u);   // nobody to invite
  EXPECT_EQ(ClientSampler::target_count(1, 0.01), 1u);  // at least one
  EXPECT_EQ(ClientSampler::target_count(10, 0.25), 3u);  // ceil(2.5)
  EXPECT_EQ(ClientSampler::target_count(10, 0.3), 3u);
  EXPECT_EQ(ClientSampler::target_count(10, 1.0), 10u);
  EXPECT_EQ(ClientSampler::target_count(4, 0.5), 2u);
}

TEST(ClientSamplerTest, FixedSeedReproducesTheInvitationSchedule) {
  std::vector<int> alive;
  for (int r = 1; r <= 10; ++r) alive.push_back(r);

  const ClientSampler a(42), b(42), c(43);
  bool some_window_differs_across_seeds = false;
  bool some_window_differs_across_windows = false;
  std::vector<int> prev;
  for (std::uint64_t w = 0; w < 12; ++w) {
    const auto sa = a.sample(w, alive, 0.4);
    const auto sb = b.sample(w, alive, 0.4);
    const auto sc = c.sample(w, alive, 0.4);
    // The property the run-reproducibility guarantee rests on: same seed,
    // same window, same alive set → the identical invitation set.
    EXPECT_EQ(sa, sb) << "window " << w;
    if (sa != sc) some_window_differs_across_seeds = true;
    if (w > 0 && sa != prev) some_window_differs_across_windows = true;
    prev = sa;

    // Structural invariants: sorted, unique, drawn from alive, right size.
    EXPECT_EQ(sa.size(), ClientSampler::target_count(alive.size(), 0.4));
    EXPECT_TRUE(std::is_sorted(sa.begin(), sa.end()));
    const std::set<int> uniq(sa.begin(), sa.end());
    EXPECT_EQ(uniq.size(), sa.size());
    for (int r : sa)
      EXPECT_TRUE(std::find(alive.begin(), alive.end(), r) != alive.end());
  }
  EXPECT_TRUE(some_window_differs_across_seeds);
  EXPECT_TRUE(some_window_differs_across_windows);
}

TEST(ClientSamplerTest, SampleInputOrderDoesNotMatter) {
  const ClientSampler s(7);
  const std::vector<int> sorted_alive{1, 2, 3, 4, 5, 6};
  const std::vector<int> shuffled_alive{4, 1, 6, 2, 5, 3};
  EXPECT_EQ(s.sample(3, sorted_alive, 0.5), s.sample(3, shuffled_alive, 0.5));
}

TEST(ClientSamplerTest, ResampleIsDeterministicAndHonorsExclusion) {
  const ClientSampler s(99);
  const std::vector<int> eligible{1, 2, 3, 4, 5, 6};
  const std::vector<int> exclude{2, 4};
  for (std::uint64_t pick = 0; pick < 8; ++pick) {
    const int r = s.resample(5, pick, eligible, exclude);
    EXPECT_EQ(r, s.resample(5, pick, eligible, exclude));
    ASSERT_GE(r, 1);
    EXPECT_TRUE(std::find(eligible.begin(), eligible.end(), r) != eligible.end());
    EXPECT_TRUE(std::find(exclude.begin(), exclude.end(), r) == exclude.end());
  }
  // Everyone excluded → no replacement available.
  EXPECT_EQ(s.resample(5, 0, eligible, eligible), -1);
  EXPECT_EQ(s.resample(5, 0, {}, {}), -1);
}

// --- registry -----------------------------------------------------------------

TEST(PopulationRegistryTest, RejoinIsAFreshIncarnation) {
  PopulationRegistry reg;
  reg.join(1, 0);
  reg.join(2, 0);
  EXPECT_EQ(reg.alive_count(), 2u);
  EXPECT_EQ(reg.population(), 2u);

  // Joining while alive is idempotent (the transport feed and the protocol
  // frames can both report the same connect).
  reg.join(1, 0);
  EXPECT_EQ(reg.population(), 2u);
  EXPECT_EQ(reg.joins_total(), 2u);

  reg.leave(1, 3);
  EXPECT_FALSE(reg.is_alive(1));
  EXPECT_EQ(reg.alive(), (std::vector<int>{2}));
  reg.leave(1, 3);  // idempotent
  EXPECT_EQ(reg.leaves_total(), 1u);

  // The comeback is what grows the population past the transport world:
  // a 2-rank registry with one churn cycle has seen 3 identities.
  reg.join(1, 5);
  EXPECT_TRUE(reg.is_alive(1));
  EXPECT_EQ(reg.entry(1).incarnations, 2u);
  EXPECT_EQ(reg.population(), 3u);
  EXPECT_EQ(reg.joins_total(), 3u);

  reg.seen(2, 7);
  EXPECT_EQ(reg.entry(2).last_seen_version, 7u);
  EXPECT_EQ(reg.alive(), (std::vector<int>{1, 2}));
}

// --- staleness buffer ---------------------------------------------------------

std::vector<Tensor> delta(float a, float b) {
  return {Tensor::full({4}, a), Tensor::full({3}, b)};
}

TEST(StalenessBufferTest, WeightIsAlphaOverOnePlusStaleness) {
  FramePool pool;
  const StalenessBuffer buf(pool, nullptr, 2, 4, 0.6);
  EXPECT_DOUBLE_EQ(buf.weight(0), 0.6);
  EXPECT_DOUBLE_EQ(buf.weight(1), 0.3);
  EXPECT_DOUBLE_EQ(buf.weight(3), 0.15);
}

TEST(StalenessBufferTest, DrainIsTheMeanOfStalenessWeightedUpdates) {
  FramePool pool;
  StalenessBuffer buf(pool, nullptr, 2, 4, 0.6);
  const Bytes f0 = encode_update(delta(1.0f, -2.0f), 1.0, {}, 0, 2);
  const Bytes f1 = encode_update(delta(3.0f, 5.0f), 1.0, {}, 1, 2);

  EXPECT_EQ(buf.offer(f0, 0), StalenessBuffer::Admission::Accepted);
  EXPECT_FALSE(buf.ready());
  EXPECT_EQ(buf.offer(f1, 2), StalenessBuffer::Admission::Accepted);
  ASSERT_TRUE(buf.ready());
  EXPECT_EQ(buf.size(), 2u);

  // mean of {0.6·Δ0, 0.2·Δ1}: weight α/(1+s) with α=0.6, s ∈ {0, 2}.
  const auto mean = buf.drain();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_NEAR(mean[0][0], (0.6 * 1.0 + 0.2 * 3.0) / 2.0, 1e-6);
  EXPECT_NEAR(mean[1][0], (0.6 * -2.0 + 0.2 * 5.0) / 2.0, 1e-6);

  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.drains_total(), 1u);
  EXPECT_EQ(buf.accepted_total(), 2u);
  EXPECT_EQ(buf.staleness_sum(), 2u);
}

TEST(StalenessBufferTest, RejectsOverflowAndOverStaleUpdates) {
  FramePool pool;
  StalenessBuffer buf(pool, nullptr, 1, 1, 0.5);
  const Bytes f = encode_update(delta(1.0f, 1.0f), 1.0, {}, 0, 1);

  EXPECT_EQ(buf.offer(f, 0), StalenessBuffer::Admission::Accepted);
  ASSERT_TRUE(buf.ready());
  // Caller deferred the drain: the buffer holds the line.
  EXPECT_EQ(buf.offer(f, 0), StalenessBuffer::Admission::RejectedFull);
  (void)buf.drain();

  EXPECT_EQ(buf.offer(f, 2), StalenessBuffer::Admission::RejectedStale);
  EXPECT_EQ(buf.offer(f, 1), StalenessBuffer::Admission::Accepted);  // at the bound

  EXPECT_EQ(buf.accepted_total(), 2u);
  EXPECT_EQ(buf.rejected_full_total(), 1u);
  EXPECT_EQ(buf.rejected_stale_total(), 1u);
  // Rejections leave the staleness stats untouched.
  EXPECT_EQ(buf.staleness_sum(), 1u);
}

TEST(StalenessBufferTest, ZeroMaxStalenessIsUnbounded) {
  FramePool pool;
  StalenessBuffer buf(pool, nullptr, 2, 0, 1.0);
  const Bytes f = encode_update(delta(1.0f, 1.0f), 1.0, {}, 0, 1);
  EXPECT_EQ(buf.offer(f, 1000), StalenessBuffer::Admission::Accepted);
}

// --- serve config -------------------------------------------------------------

TEST(ServeConfigTest, MissingGroupYieldsDisabledDefaults) {
  const ServeConfig c = ServeConfig::from_config(ConfigNode{});
  EXPECT_FALSE(c.enabled);
  EXPECT_EQ(c.mode, of::serve::Mode::Sync);
  EXPECT_DOUBLE_EQ(c.fraction, 1.0);
  EXPECT_EQ(c.buffer_size, 1u);
}

TEST(ServeConfigTest, CrossFieldAndRangeValidation) {
  // Sync mode must not carry buffer knobs — they would silently do nothing.
  EXPECT_THROW(ServeConfig::from_config(
                   parse_yaml("enabled: true\nmode: sync\nbuffer_size: 2")),
               std::runtime_error);
  EXPECT_THROW(ServeConfig::from_config(
                   parse_yaml("enabled: true\nmode: sync\nmax_staleness: 3")),
               std::runtime_error);
  // Per-field ranges from the descriptor.
  EXPECT_THROW(ServeConfig::from_config(parse_yaml("fraction: 0.0")),
               std::runtime_error);
  EXPECT_THROW(ServeConfig::from_config(parse_yaml("fraction: 1.5")),
               std::runtime_error);
  EXPECT_THROW(ServeConfig::from_config(parse_yaml("buffer_size: 0")),
               std::runtime_error);
}

TEST(ServeConfigTest, ConfigGroupsComposeFromConfigsDir) {
  // The Hydra-style one-line switch: `defaults: [- serve: cross_device]`
  // pulls configs/serve/cross_device.yaml in under the serve: key.
  const ConfigNode root =
      of::config::compose_from(parse_yaml("defaults:\n  - serve: cross_device\n"),
                               OF_CONFIGS_DIR);
  const ServeConfig c = ServeConfig::from_config(root.at("serve"));
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.mode, of::serve::Mode::FedBuff);
  EXPECT_DOUBLE_EQ(c.fraction, 0.5);
  EXPECT_EQ(c.buffer_size, 2u);
  EXPECT_EQ(c.max_staleness, 2u);
}

// --- zero-survivor streaming gather (combiner + root tiers) -------------------

TEST(ZeroSurvivors, EmptyCombinerPartialKeepsRootCountAtZero) {
  // Combiner tier: every group member was cut, so the combiner's partial is
  // a skip body. The root must see it as a non-contribution and fail its
  // drain with the structured no-updates error, not divide by zero.
  FramePool pool;
  StreamingSum combiner(pool);
  Bytes partial;
  combiner.encode_partial_into(1.0, nullptr, partial);

  StreamingSum root(pool);
  root.add_partial(partial);
  EXPECT_EQ(root.count(), 0u);
  try {
    (void)root.finish_mean();
    FAIL() << "finish_mean accepted an empty aggregation";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no client updates to aggregate"),
              std::string::npos);
  }
}

TEST(ZeroSurvivors, StreamingGatherPastDeadlineNeverCallsTheSink) {
  using of::comm::TcpCommunicator;
  std::unique_ptr<TcpCommunicator> server;
  const std::uint16_t port = of::testutil::ephemeral_port();
  std::thread srv([&] { server = TcpCommunicator::make_server(port, 2); });
  auto client = TcpCommunicator::make_client("127.0.0.1", port, 1, 2);
  srv.join();

  const Bytes own = encode_update(delta(1.0f, 1.0f), 1.0, {}, 0, 2);
  star::PartialGatherOptions opt;
  opt.min_clients = 0;  // proceed with whatever arrived — possibly nothing
  opt.deadline_seconds = 0.15;
  opt.quorum_timeout_seconds = 0.5;

  std::size_t sunk = 0;
  const auto g = star::gather_bytes_streaming(
      *server, own, [&](int, Bytes&&) { ++sunk; }, opt);
  EXPECT_TRUE(g.participated.empty());
  EXPECT_EQ(g.dropped, (std::vector<int>{1}));
  EXPECT_TRUE(g.deadline_hit);
  EXPECT_EQ(sunk, 0u);

  // A StreamingSum behind that sink holds nothing; the aggregation layer
  // sees the structured error instead of an empty-mean frame.
  FramePool pool;
  StreamingSum sum(pool);
  EXPECT_THROW((void)sum.finish_mean(), std::runtime_error);

  // With a real quorum the hub refuses to proceed, loudly, once the quorum
  // timeout itself passes.
  opt.min_clients = 1;
  opt.deadline_seconds = 0.05;
  opt.quorum_timeout_seconds = 0.2;
  try {
    (void)star::gather_bytes_streaming(*server, own, [](int, Bytes&&) {}, opt);
    FAIL() << "quorum of 1 satisfied by zero survivors";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("partial gather"), std::string::npos);
  }
}

// --- engine integration -------------------------------------------------------

ConfigNode serve_base_config() {
  return parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 3
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
)");
}

TEST(EngineServe, SyncModeIsBitwiseIdenticalToNoServeGroup) {
  // `serve: sync` must keep the serving layer entirely out of the data
  // path: same bytes out, same metrics, not just similar accuracy.
  ConfigNode with_serve = serve_base_config();
  with_serve.set_path("defaults", parse_yaml("d:\n  - serve: sync\n").at("d"));
  Engine a(of::config::compose_from(std::move(with_serve), OF_CONFIGS_DIR));
  Engine b(serve_base_config());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_FALSE(ra.final_model_bytes.empty());
  EXPECT_TRUE(ra.final_model_bytes == rb.final_model_bytes)
      << "serve: sync perturbed the training path";
  EXPECT_EQ(ra.to_metrics_csv(), rb.to_metrics_csv());
}

TEST(EngineServe, FedBuffGroupLearns) {
  // The stock configs/serve/fedbuff.yaml group, via the one-line switch.
  ConfigNode cfg = serve_base_config();
  cfg.set_path("defaults", parse_yaml("d:\n  - serve: fedbuff\n").at("d"));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(8));
  Engine engine(of::config::compose_from(std::move(cfg), OF_CONFIGS_DIR));
  const RunResult r = engine.run();
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_GT(r.final_accuracy, 0.5f);
}

TEST(EngineServe, ConfigConflictsAreRejected) {
  {
    // The legacy async group and an explicit serve group fight over the
    // same knobs.
    ConfigNode cfg = serve_base_config();
    cfg.set_path("scheduling.mode", ConfigNode::string("async"));
    cfg.set_path("serve.enabled", ConfigNode::boolean(true));
    cfg.set_path("serve.mode", ConfigNode::string("fedbuff"));
    EXPECT_THROW(
        {
          Engine engine(cfg);
          (void)engine.run();
        },
        std::runtime_error);
  }
  {
    // Churn without a serving tier has nobody to churn against.
    ConfigNode cfg = serve_base_config();
    cfg.set_path("fault.churn.enabled", ConfigNode::boolean(true));
    cfg.set_path("fault.churn.leave_probability", ConfigNode::floating(0.2));
    EXPECT_THROW(
        {
          Engine engine(cfg);
          (void)engine.run();
        },
        std::runtime_error);
  }
  {
    // FedBuff needs a hub; a ring has none.
    ConfigNode cfg = serve_base_config();
    cfg.set_path("topology._target_", ConfigNode::string("RingTopology"));
    cfg.set_path("topology.num_nodes", ConfigNode::integer(4));
    cfg.set_path("serve.enabled", ConfigNode::boolean(true));
    cfg.set_path("serve.mode", ConfigNode::string("fedbuff"));
    EXPECT_THROW(
        {
          Engine engine(cfg);
          (void)engine.run();
        },
        std::runtime_error);
  }
}

// Pull one numeric field out of the fleet JSON blob.
double fleet_json_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing from " << json;
  if (pos == std::string::npos) return -1.0;
  return std::stod(json.substr(pos + needle.size()));
}

TEST(EngineServe, ChurningTcpPopulationGrowsPastWorldSizeWithBackpressure) {
  // The acceptance run: a real-socket star, a sampled fraction training
  // concurrently, one straggler slow enough that its updates blow the
  // staleness bound, and churn that makes invited clients deregister and
  // come back as fresh identities. The run must finish, and the fleet
  // gauges must show a population larger than the transport world plus
  // nonzero rejected and resampled counts.
  ConfigNode cfg = serve_base_config();
  cfg.set_path("topology.inner_comm._target_",
               ConfigNode::string("GrpcCommunicator"));
  cfg.set_path("topology.inner_comm.port", ConfigNode::integer(of::testutil::ephemeral_port()));
  cfg.set_path("algorithm.global_rounds", ConfigNode::integer(10));
  cfg.set_path("serve", parse_yaml(R"(
enabled: true
mode: fedbuff
fraction: 0.5
buffer_size: 1
max_staleness: 1
alpha: 0.6
retry_seconds: 0.005
)"));
  cfg.set_path("heterogeneity.slowdowns",
               of::config::parse_yaml("v: [1.0, 1.0, 1.0, 6.0]").at("v"));
  cfg.set_path("fault.churn", parse_yaml(R"(
enabled: true
leave_probability: 0.3
down_seconds: 0.02
)"));
  cfg.set_path("obs", parse_yaml("enabled: true\ntelemetry: true\n"));

  Engine engine(cfg);
  const RunResult r = engine.run();
  // 10 rounds × 4 clients = 40 accepted updates, one RoundRecord per 4.
  ASSERT_EQ(r.rounds.size(), 10u);
  EXPECT_GT(r.final_accuracy, 0.3f);

  const std::string json = of::obs::Fleet::global().json_text();
  const auto serve_at = json.find("\"serve\":");
  ASSERT_NE(serve_at, std::string::npos) << json;
  const std::string serve_json = json.substr(serve_at);

  EXPECT_EQ(fleet_json_number(serve_json, "accepted_total"), 40.0);
  // Churn re-registrations grow the identity count past the 5-rank world.
  EXPECT_GT(fleet_json_number(serve_json, "population"), 5.0);
  EXPECT_GT(fleet_json_number(serve_json, "joins_total"), 4.0);
  EXPECT_GE(fleet_json_number(serve_json, "leaves_total"), 1.0);
  // The 6× straggler trains against snapshots that are several drains old:
  // over-stale updates must have been bounced with retry-after...
  EXPECT_GE(fleet_json_number(serve_json, "rejected_stale_total"), 1.0);
  // ...and churned-away invitees must have been replaced deterministically.
  EXPECT_GE(fleet_json_number(serve_json, "resampled_total"), 1.0);
  EXPECT_GT(fleet_json_number(serve_json, "mean_staleness"), 0.0);
}

TEST(EngineServe, FixedSeedTcpRunsReproduceTheSamplingDecisions) {
  // Same seed, same world → the sampler's invitation schedule replays, so
  // both runs absorb the same update count and report identical round
  // structure (per-update arrival order may differ; the decision streams
  // must not).
  const auto run_once = [] {
    ConfigNode cfg = serve_base_config();
    cfg.set_path("algorithm.global_rounds", ConfigNode::integer(6));
    cfg.set_path("serve", parse_yaml(R"(
enabled: true
mode: fedbuff
fraction: 0.5
buffer_size: 2
alpha: 0.6
)"));
    Engine engine(cfg);
    return engine.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.final_model_bytes.size(), b.final_model_bytes.size());
}

}  // namespace
