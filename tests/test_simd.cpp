// Bitwise-identity property tests for the of::simd dispatch facade: every
// kernel must produce byte-for-byte identical results under the scalar table
// (`exec: {simd: off}`) and the AVX2 table (`auto`), across awkward tail
// lengths and non-finite inputs. On a host without AVX2 both modes bind the
// scalar table and the comparisons are trivially true — the suite still
// exercises the kernels once, so it never silently skips the scalar path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "simd/simd.hpp"
#include "tensor/rng.hpp"

namespace {

using of::simd::Mode;
using of::tensor::Rng;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// Lengths chosen to hit the empty case, sub-width tails, exact vector
// widths, width+1 straddles and a long run (AVX2 float width is 8).
const std::size_t kLens[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 1001};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed,
                                 bool specials = false) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float() * 8.0f - 4.0f;
  if (specials && n >= 8) {
    v[1] = kNan;
    v[3] = kInf;
    v[5] = -kInf;
    v[n / 2] = -0.0f;
    v[n - 1] = std::numeric_limits<float>::denorm_min();
  }
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * 4) == 0);
}

// Run `fn` under both tables and require byte-identical buffers out. `fn`
// receives fresh copies of the inputs each time and returns the buffer to
// compare.
template <typename Fn>
void expect_both_tables_equal(Fn&& fn) {
  of::simd::configure(Mode::Off);
  const auto scalar = fn();
  of::simd::configure(Mode::Auto);
  const auto vec = fn();
  of::simd::configure(Mode::Auto);
  EXPECT_EQ(scalar.size(), vec.size());
  if (!scalar.empty())
    EXPECT_EQ(std::memcmp(scalar.data(), vec.data(),
                          scalar.size() * sizeof(scalar[0])),
              0);
}

TEST(SimdIdentity, ElementwiseKernels) {
  for (std::size_t n : kLens) {
    const auto d0 = random_floats(n, 11, /*specials=*/true);
    const auto o = random_floats(n, 22, /*specials=*/true);
    const auto run = [&](auto&& kernel) {
      expect_both_tables_equal([&] {
        std::vector<float> d = d0;
        kernel(d);
        return d;
      });
    };
    run([&](std::vector<float>& d) { of::simd::add(d.data(), o.data(), n); });
    run([&](std::vector<float>& d) { of::simd::sub(d.data(), o.data(), n); });
    run([&](std::vector<float>& d) { of::simd::mul(d.data(), o.data(), n); });
    run([&](std::vector<float>& d) { of::simd::div(d.data(), o.data(), n); });
    run([&](std::vector<float>& d) {
      of::simd::axpy(d.data(), o.data(), 0.37f, n);
    });
    run([&](std::vector<float>& d) { of::simd::scale(d.data(), -1.7f, n); });
    run([&](std::vector<float>& d) { of::simd::add_scalar(d.data(), 0.9f, n); });
    run([&](std::vector<float>& d) { of::simd::clamp(d.data(), -1.0f, 1.0f, n); });
    run([&](std::vector<float>& d) {
      of::simd::accum_weighted(d.data(), o.data(), 0.25f, n);
    });
  }
}

TEST(SimdIdentity, ScaleStoresAndAdmission) {
  for (std::size_t n : kLens) {
    for (bool specials : {false, true}) {
      const auto src = random_floats(n, 33, specials);
      const bool want_finite = !specials || n < 8;
      // f32 store into floats.
      expect_both_tables_equal([&] {
        std::vector<float> dst(n, 0.0f);
        EXPECT_EQ(of::simd::scale_store(dst.data(), src.data(), 0.125, n),
                  want_finite);
        return dst;
      });
      // f32 store into a deliberately unaligned byte buffer.
      expect_both_tables_equal([&] {
        std::vector<std::uint8_t> buf(n * 4 + 1, 0xCD);
        EXPECT_EQ(
            of::simd::scale_store_bytes(buf.data() + 1, src.data(), 3.5, n),
            want_finite);
        return buf;
      });
      // f16 store into an unaligned byte buffer.
      expect_both_tables_equal([&] {
        std::vector<std::uint8_t> buf(n * 2 + 1, 0xCD);
        EXPECT_EQ(
            of::simd::scale_store_f16_bytes(buf.data() + 1, src.data(), 0.75, n),
            want_finite);
        return buf;
      });
      // The cold rescan agrees between tables too.
      of::simd::configure(Mode::Off);
      const std::size_t at_scalar = of::simd::find_nonfinite(src.data(), n);
      of::simd::configure(Mode::Auto);
      EXPECT_EQ(of::simd::find_nonfinite(src.data(), n), at_scalar);
      EXPECT_EQ(at_scalar == n, want_finite);
    }
  }
}

TEST(SimdIdentity, AccumulateFromUnalignedBytes) {
  for (std::size_t n : kLens) {
    const auto src = random_floats(n, 44);
    const auto acc0 = random_floats(n, 55);
    std::vector<std::uint8_t> f32_bytes(n * 4 + 3, 0);
    std::memcpy(f32_bytes.data() + 3, src.data(), n * 4);
    std::vector<std::uint16_t> halves(n);
    of::simd::f32_to_f16(halves.data(), src.data(), n);
    std::vector<std::uint8_t> f16_bytes(n * 2 + 1, 0);
    std::memcpy(f16_bytes.data() + 1, halves.data(), n * 2);
    expect_both_tables_equal([&] {
      std::vector<float> acc = acc0;
      of::simd::accum_scaled_bytes(acc.data(), f32_bytes.data() + 3, 0.2, n);
      return acc;
    });
    expect_both_tables_equal([&] {
      std::vector<float> acc = acc0;
      of::simd::accum_scaled_f16_bytes(acc.data(), f16_bytes.data() + 1, 0.2, n);
      return acc;
    });
  }
}

TEST(SimdIdentity, SumSquaresFixedLanes) {
  for (std::size_t n : kLens) {
    const auto x = random_floats(n, 66);
    of::simd::configure(Mode::Off);
    const double scalar = of::simd::sum_squares(x.data(), n);
    of::simd::configure(Mode::Auto);
    const double vec = of::simd::sum_squares(x.data(), n);
    // Bitwise, not approximate: the fixed 4-lane accumulation is the contract.
    EXPECT_EQ(std::memcmp(&scalar, &vec, sizeof(double)), 0) << "n=" << n;
  }
}

TEST(SimdIdentity, F16RoundTripExhaustive) {
  // f16→f32 over every one of the 65536 half patterns, then the RTNE
  // f32→f16 round-trip back (NaN payloads may quieten; compare through the
  // float image instead for NaN inputs).
  std::vector<std::uint16_t> halves(1 << 16);
  for (std::size_t i = 0; i < halves.size(); ++i)
    halves[i] = static_cast<std::uint16_t>(i);
  expect_both_tables_equal([&] {
    std::vector<float> f(halves.size());
    of::simd::f16_to_f32(f.data(), halves.data(), halves.size());
    return f;
  });
  std::vector<float> floats(halves.size());
  of::simd::f16_to_f32(floats.data(), halves.data(), halves.size());
  expect_both_tables_equal([&] {
    std::vector<std::uint16_t> back(floats.size());
    of::simd::f32_to_f16(back.data(), floats.data(), floats.size());
    return back;
  });
  // Dense float sweep around the rounding-interesting ranges.
  const auto sweep = [&](float lo, float hi, std::size_t steps) {
    std::vector<float> xs(steps);
    for (std::size_t i = 0; i < steps; ++i)
      xs[i] = lo + (hi - lo) * static_cast<float>(i) / static_cast<float>(steps);
    expect_both_tables_equal([&] {
      std::vector<std::uint16_t> out(xs.size());
      of::simd::f32_to_f16(out.data(), xs.data(), xs.size());
      return out;
    });
  };
  sweep(-2.0f, 2.0f, 40000);            // normals incl. subnormal target range
  sweep(60000.0f, 80000.0f, 10000);     // overflow→inf boundary
  sweep(-1e-7f, 1e-7f, 10000);          // flush-to-subnormal boundary
}

TEST(SimdIdentity, QsgdKernels) {
  for (std::size_t n : kLens) {
    const auto v = random_floats(n, 77);
    const auto draws = random_floats(n, 88);  // [−4,4) is fine: identity only
    const float norm =
        std::sqrt(static_cast<float>(of::simd::sum_squares(v.data(), n)));
    if (!(norm > 0.0f)) continue;
    expect_both_tables_equal([&] {
      std::vector<std::int8_t> codes(n);
      of::simd::qsgd_quantize_i8(codes.data(), v.data(), draws.data(), norm,
                                 127.0f, 127, n);
      return codes;
    });
    expect_both_tables_equal([&] {
      std::vector<std::int16_t> codes(n);
      of::simd::qsgd_quantize_i16(codes.data(), v.data(), draws.data(), norm,
                                  32767.0f, 32767, n);
      return codes;
    });
    std::vector<std::int8_t> c8(n);
    of::simd::qsgd_quantize_i8(c8.data(), v.data(), draws.data(), norm, 127.0f,
                               127, n);
    std::vector<std::uint8_t> c8_bytes(n + 1, 0);
    std::memcpy(c8_bytes.data() + 1, c8.data(), n);
    expect_both_tables_equal([&] {
      std::vector<float> out(n, -1.0f);
      of::simd::qsgd_dequantize_i8(out.data(), c8_bytes.data() + 1, norm,
                                   127.0f, n);
      return out;
    });
    std::vector<std::int16_t> c16(n);
    of::simd::qsgd_quantize_i16(c16.data(), v.data(), draws.data(), norm,
                                32767.0f, 32767, n);
    std::vector<std::uint8_t> c16_bytes(n * 2 + 1, 0);
    std::memcpy(c16_bytes.data() + 1, c16.data(), n * 2);
    expect_both_tables_equal([&] {
      std::vector<float> out(n, -1.0f);
      of::simd::qsgd_dequantize_i16(out.data(), c16_bytes.data() + 1, norm,
                                    32767.0f, n);
      return out;
    });
  }
}

TEST(SimdIdentity, DpClipPerturbStore) {
  for (std::size_t n : kLens) {
    const auto u = random_floats(n, 99);
    const auto noise = random_floats(n, 111);
    expect_both_tables_equal([&] {
      std::vector<std::uint8_t> buf(n * 4 + 1, 0xEE);
      of::simd::mul_add_store_bytes(buf.data() + 1, u.data(), 0.8f,
                                    noise.data(), n);
      return buf;
    });
  }
}

TEST(SimdConfig, ModeKnobBindsTables) {
  of::simd::configure(Mode::Off);
  EXPECT_EQ(of::simd::mode(), Mode::Off);
  EXPECT_FALSE(of::simd::avx2_active());
  EXPECT_STREQ(of::simd::active_level(), "scalar");
  of::simd::configure(Mode::Auto);
  EXPECT_EQ(of::simd::mode(), Mode::Auto);
  // Auto binds whatever the CPU supports; either way the name is reported.
  const char* level = of::simd::active_level();
  EXPECT_TRUE(std::strcmp(level, "avx2") == 0 || std::strcmp(level, "scalar") == 0);
}

// End-to-end: a full federation run under `exec: {simd: off}` must produce
// the same final model bytes and the same deterministic metrics CSV as
// `exec: {simd: auto}` — the whole-pipeline form of the bitwise contract.
TEST(SimdEndToEnd, FederationRunBitwiseIdentical) {
  const auto run_with = [](const char* simd_mode) {
    of::config::ConfigNode cfg = of::config::parse_yaml(R"(
seed: 7
exec:
  threads: 1
  simd: auto
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 2
  local_epochs: 1
  lr: 0.05
eval_every: 1
)");
    cfg.set_path("exec.simd", of::config::ConfigNode::string(simd_mode));
    of::core::Engine engine(cfg);
    return engine.run();
  };
  const auto off = run_with("off");
  const auto fast = run_with("auto");
  of::simd::configure(Mode::Auto);
  ASSERT_EQ(off.final_model_bytes.size(), fast.final_model_bytes.size());
  EXPECT_EQ(std::memcmp(off.final_model_bytes.data(),
                        fast.final_model_bytes.data(),
                        off.final_model_bytes.size()),
            0);
  EXPECT_EQ(off.to_metrics_csv(), fast.to_metrics_csv());
}

// Same contract through the compressed (fused quantize-on-the-wire) path.
TEST(SimdEndToEnd, QsgdFederationRunBitwiseIdentical) {
  const auto run_with = [](const char* simd_mode) {
    of::config::ConfigNode cfg = of::config::parse_yaml(R"(
seed: 9
exec:
  threads: 1
  simd: auto
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 3
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
compression:
  _target_: QSGD
  bits: 8
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 2
  local_epochs: 1
  lr: 0.05
eval_every: 1
)");
    cfg.set_path("exec.simd", of::config::ConfigNode::string(simd_mode));
    of::core::Engine engine(cfg);
    return engine.run();
  };
  const auto off = run_with("off");
  const auto fast = run_with("auto");
  of::simd::configure(Mode::Auto);
  ASSERT_EQ(off.final_model_bytes.size(), fast.final_model_bytes.size());
  EXPECT_EQ(std::memcmp(off.final_model_bytes.data(),
                        fast.final_model_bytes.data(),
                        off.final_model_bytes.size()),
            0);
  EXPECT_EQ(off.to_metrics_csv(), fast.to_metrics_csv());
}

}  // namespace
