#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "streaming/broker.hpp"
#include "streaming/consumer.hpp"
#include "streaming/producer.hpp"

namespace {

using of::streaming::Broker;
using of::streaming::Consumer;
using of::streaming::RateLimitedProducer;
using of::streaming::Record;
using of::tensor::Bytes;
using of::tensor::Rng;
using of::tensor::Tensor;

TEST(Broker, TopicLifecycle) {
  Broker broker;
  EXPECT_FALSE(broker.has_topic("t"));
  broker.create_topic("t", 3);
  EXPECT_TRUE(broker.has_topic("t"));
  EXPECT_EQ(broker.partition_count("t"), 3u);
  EXPECT_THROW(broker.create_topic("t", 1), std::runtime_error);
  EXPECT_THROW(broker.partition_count("missing"), std::runtime_error);
}

TEST(Broker, OffsetsAreSequentialPerPartition) {
  Broker broker;
  broker.create_topic("t", 2);
  EXPECT_EQ(broker.produce("t", 0, 0, Bytes{1}), 0u);
  EXPECT_EQ(broker.produce("t", 0, 0, Bytes{2}), 1u);
  EXPECT_EQ(broker.produce("t", 1, 0, Bytes{3}), 0u);  // partitions independent
  EXPECT_EQ(broker.end_offset("t", 0), 2u);
  EXPECT_EQ(broker.end_offset("t", 1), 1u);
}

TEST(Broker, FetchPreservesOrderWithinPartition) {
  Broker broker;
  broker.create_topic("t", 1);
  for (std::uint8_t i = 0; i < 20; ++i) broker.produce("t", 0, i, Bytes{i});
  const auto recs = broker.fetch("t", 0, 0, 100, 0.0);
  ASSERT_EQ(recs.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(recs[i].offset, i);
    EXPECT_EQ(recs[i].payload[0], static_cast<std::uint8_t>(i));
  }
}

TEST(Broker, FetchRespectsOffsetAndMax) {
  Broker broker;
  broker.create_topic("t", 1);
  for (std::uint8_t i = 0; i < 10; ++i) broker.produce("t", 0, i, Bytes{i});
  const auto recs = broker.fetch("t", 0, 4, 3, 0.0);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].offset, 4u);
  EXPECT_EQ(recs[2].offset, 6u);
}

TEST(Broker, FetchBlocksUntilDataArrives) {
  Broker broker;
  broker.create_topic("t", 1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    broker.produce("t", 0, 0, Bytes{42});
  });
  const auto recs = broker.fetch("t", 0, 0, 1, 2.0);
  producer.join();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].payload[0], 42);
}

TEST(Broker, FetchTimesOutEmpty) {
  Broker broker;
  broker.create_topic("t", 1);
  EXPECT_TRUE(broker.fetch("t", 0, 0, 1, 0.02).empty());
}

TEST(Broker, KeyedProduceRoutesByHash) {
  Broker broker;
  broker.create_topic("t", 4);
  for (std::uint64_t key = 0; key < 16; ++key) broker.produce_keyed("t", key, Bytes{1});
  for (std::size_t p = 0; p < 4; ++p) EXPECT_EQ(broker.end_offset("t", p), 4u);
}

TEST(PartitionAssignment, RoundRobinDisjointAndComplete) {
  const std::size_t partitions = 10, members = 3;
  std::set<std::size_t> all;
  for (std::size_t m = 0; m < members; ++m) {
    const auto mine = of::streaming::assign_partitions(partitions, members, m);
    for (std::size_t p : mine) {
      EXPECT_TRUE(all.insert(p).second) << "partition " << p << " double-assigned";
    }
  }
  EXPECT_EQ(all.size(), partitions);
}

TEST(Consumer, TracksOffsetsAcrossPolls) {
  Broker broker;
  broker.create_topic("t", 1);
  for (std::uint8_t i = 0; i < 10; ++i) broker.produce("t", 0, i, Bytes{i});
  Consumer consumer(broker, "t", 1, 0);
  const auto first = consumer.poll(4, 0.0);
  const auto second = consumer.poll(100, 0.0);
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(second.size(), 6u);
  EXPECT_EQ(second[0].offset, 4u);
  EXPECT_EQ(consumer.records_consumed(), 10u);
  EXPECT_EQ(consumer.lag(), 0u);
}

TEST(Consumer, GroupMembersSeeDisjointRecords) {
  Broker broker;
  broker.create_topic("t", 4);
  for (std::uint64_t i = 0; i < 40; ++i) broker.produce_keyed("t", i, Bytes{1});
  Consumer a(broker, "t", 2, 0), b(broker, "t", 2, 1);
  const auto ra = a.poll(100, 0.0);
  const auto rb = b.poll(100, 0.0);
  EXPECT_EQ(ra.size() + rb.size(), 40u);
  EXPECT_EQ(ra.size(), 20u);
}

TEST(Consumer, LagCountsUnread) {
  Broker broker;
  broker.create_topic("t", 1);
  Consumer consumer(broker, "t", 1, 0);
  for (int i = 0; i < 5; ++i) broker.produce("t", 0, 0, Bytes{1});
  EXPECT_EQ(consumer.lag(), 5u);
  (void)consumer.poll(2, 0.0);
  EXPECT_EQ(consumer.lag(), 3u);
}

TEST(Sample, EncodeDecodeRoundtrip) {
  Rng rng(1);
  const Tensor row = Tensor::randn({16}, rng);
  const Bytes payload = of::streaming::encode_sample(row, 7);
  Tensor out;
  std::size_t label = 0;
  of::streaming::decode_sample(payload, out, label);
  EXPECT_EQ(label, 7u);
  EXPECT_TRUE(out.allclose(row, 0.0f, 0.0f));
}

TEST(Producer, UnthrottledIsImmediate) {
  Broker broker;
  broker.create_topic("t", 1);
  RateLimitedProducer producer(broker, "t", 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) producer.produce(0, 0, Bytes{1});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(secs, 0.5);
  EXPECT_EQ(producer.records_produced(), 1000u);
}

TEST(Producer, TokenBucketHoldsTargetRate) {
  Broker broker;
  broker.create_topic("t", 1);
  RateLimitedProducer producer(broker, "t", /*rate=*/200.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 60; ++i) producer.produce(0, 0, Bytes{1});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double rate = 60.0 / secs;
  EXPECT_NEAR(rate, 200.0, 60.0);  // within 30% on a noisy CI box
}

TEST(Producer, EffectiveRateReported) {
  Broker broker;
  broker.create_topic("t", 1);
  RateLimitedProducer producer(broker, "t", 500.0);
  for (int i = 0; i < 50; ++i) producer.produce(0, 0, Bytes{1});
  EXPECT_GT(producer.effective_rate(), 100.0);
  EXPECT_LT(producer.effective_rate(), 2000.0);
}

TEST(StreamingLoader, BuildsBatchesFromStream) {
  Broker broker;
  broker.create_topic("client0", 1);
  Rng rng(2);
  for (int i = 0; i < 40; ++i)
    broker.produce("client0", 0, 0,
                   of::streaming::encode_sample(Tensor::randn({8}, rng),
                                                static_cast<std::size_t>(i % 4)));
  of::streaming::StreamingDataLoader loader(broker, "client0", 1, 0, 16);
  const auto batch = loader.next_batch(1.0);
  ASSERT_EQ(batch.size(), 16u);
  EXPECT_EQ(batch.x.size(1), 8u);
  EXPECT_EQ(batch.y[3], 3u);
  EXPECT_EQ(loader.samples_received(), 16u);
}

TEST(StreamingLoader, ShortBatchOnDryStream) {
  Broker broker;
  broker.create_topic("c", 1);
  Rng rng(3);
  for (int i = 0; i < 5; ++i)
    broker.produce("c", 0, 0, of::streaming::encode_sample(Tensor::randn({4}, rng), 0));
  of::streaming::StreamingDataLoader loader(broker, "c", 1, 0, 16);
  const auto batch = loader.next_batch(0.05);
  EXPECT_EQ(batch.size(), 5u);
}

TEST(StreamingLoader, ConcurrentProducerConsumer) {
  // The paper's Fig. 6 setup in miniature: a rate-limited producer feeds a
  // client that measures its effective stream-rate.
  Broker broker;
  broker.create_topic("edge", 1);
  const double target_rate = 300.0;
  std::thread producer([&] {
    Rng rng(4);
    RateLimitedProducer p(broker, "edge", target_rate);
    for (int i = 0; i < 90; ++i)
      p.produce(0, 0, of::streaming::encode_sample(Tensor::randn({4}, rng), 0));
  });
  of::streaming::StreamingDataLoader loader(broker, "edge", 1, 0, 30);
  std::size_t got = 0;
  while (got < 90) {
    const auto b = loader.next_batch(2.0);
    if (b.size() == 0) break;
    got += b.size();
  }
  producer.join();
  EXPECT_EQ(got, 90u);
  EXPECT_NEAR(loader.effective_rate(), target_rate, target_rate * 0.5);
}

}  // namespace
