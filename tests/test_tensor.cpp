#include <gtest/gtest.h>

#include <cmath>

#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace {

using of::tensor::Bytes;
using of::tensor::Rng;
using of::tensor::Shape;
using of::tensor::Tensor;

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.ndim(), 2u);
  EXPECT_EQ(t.size(0), 2u);
  EXPECT_EQ(t.size(1), 3u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FactoryOnesFullArange) {
  EXPECT_EQ(Tensor::ones({4}).sum(), 4.0f);
  EXPECT_EQ(Tensor::full({3}, 2.5f).sum(), 7.5f);
  const Tensor a = Tensor::arange(5);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[4], 4.0f);
}

TEST(Tensor, FromVectorAndMismatchThrows) {
  const Tensor t = Tensor::from_vector({1, 2, 3});
  EXPECT_EQ(t.numel(), 3u);
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::runtime_error);
}

TEST(Tensor, ElementwiseInPlace) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor b = Tensor::from_vector({4, 5, 6});
  a.add_(b);
  EXPECT_EQ(a[0], 5.0f);
  a.sub_(b);
  EXPECT_EQ(a[2], 3.0f);
  a.mul_(b);
  EXPECT_EQ(a[1], 10.0f);
  a.div_(b);
  EXPECT_FLOAT_EQ(a[1], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add_(b), std::runtime_error);
  EXPECT_THROW(a.dot(b), std::runtime_error);
  EXPECT_THROW(a.add_scaled_(b, 1.0f), std::runtime_error);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::from_vector({1, 1});
  const Tensor b = Tensor::from_vector({2, 4});
  a.add_scaled_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
}

TEST(Tensor, ScalarOps) {
  Tensor a = Tensor::from_vector({1, -2});
  a.scale_(2.0f);
  EXPECT_EQ(a[1], -4.0f);
  a.add_scalar_(1.0f);
  EXPECT_EQ(a[0], 3.0f);
  a.clamp_(-1.0f, 1.0f);
  EXPECT_EQ(a[1], -1.0f);
  a.abs_();
  EXPECT_EQ(a[1], 1.0f);
  Tensor s = Tensor::from_vector({-3, 0, 5});
  s.sign_();
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 0.0f);
  EXPECT_EQ(s[2], 1.0f);
}

TEST(Tensor, OutOfPlaceOperators) {
  const Tensor a = Tensor::from_vector({1, 2});
  const Tensor b = Tensor::from_vector({3, 4});
  EXPECT_EQ((a + b)[1], 6.0f);
  EXPECT_EQ((b - a)[0], 2.0f);
  EXPECT_EQ((a * b)[1], 8.0f);
  EXPECT_EQ((a * 3.0f)[0], 3.0f);
  EXPECT_EQ((2.0f * a)[1], 4.0f);
  EXPECT_EQ((-a)[0], -1.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({3, -1, 4, -1, 5});
  EXPECT_FLOAT_EQ(t.sum(), 10.0f);
  EXPECT_FLOAT_EQ(t.mean(), 2.0f);
  EXPECT_EQ(t.min(), -1.0f);
  EXPECT_EQ(t.max(), 5.0f);
  EXPECT_EQ(t.argmax(), 4u);
  EXPECT_FLOAT_EQ(t.l2_norm_squared(), 9 + 1 + 16 + 1 + 25);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(52.0f));
}

TEST(Tensor, Dot) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
}

TEST(Tensor, ArgmaxRows) {
  Tensor t({2, 3}, std::vector<float>{0, 5, 1, 9, 2, 3});
  const auto rows = t.argmax_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(rows[1], 0u);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = a.matmul(b);
  ASSERT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Tensor, MatmulIdentity) {
  Rng rng(3);
  const Tensor a = Tensor::randn({5, 5}, rng);
  Tensor eye({5, 5});
  for (std::size_t i = 0; i < 5; ++i) eye(i, i) = 1.0f;
  EXPECT_TRUE(a.matmul(eye).allclose(a));
  EXPECT_TRUE(eye.matmul(a).allclose(a));
}

TEST(Tensor, MatmulDimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(a.matmul(b), std::runtime_error);
}

TEST(Tensor, TransposeInvolution) {
  Rng rng(5);
  const Tensor a = Tensor::randn({3, 7}, rng);
  EXPECT_TRUE(a.transpose2d().transpose2d().allclose(a));
  EXPECT_EQ(a.transpose2d().shape(), (Shape{7, 3}));
  EXPECT_FLOAT_EQ(a.transpose2d()(2, 1), a(1, 2));
}

TEST(Tensor, MatmulTransposeProperty) {
  // (A·B)ᵀ == Bᵀ·Aᵀ
  Rng rng(11);
  const Tensor a = Tensor::randn({4, 6}, rng);
  const Tensor b = Tensor::randn({6, 3}, rng);
  EXPECT_TRUE(a.matmul(b).transpose2d().allclose(
      b.transpose2d().matmul(a.transpose2d()), 1e-4f, 1e-4f));
}

TEST(Tensor, ReshapeAndFlatten) {
  const Tensor t = Tensor::arange(6);
  const Tensor r = t.reshape({2, 3});
  EXPECT_FLOAT_EQ(r(1, 2), 5.0f);
  EXPECT_EQ(r.flatten().shape(), (Shape{6}));
  EXPECT_THROW(t.reshape({4}), std::runtime_error);
}

TEST(Tensor, RowAccessors) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.row(1);
  EXPECT_EQ(r[0], 4.0f);
  t.set_row(0, Tensor::from_vector({9, 9, 9}));
  EXPECT_EQ(t(0, 2), 9.0f);
  EXPECT_THROW(t.row(5), std::runtime_error);
}

TEST(Tensor, Allclose) {
  const Tensor a = Tensor::from_vector({1.0f, 2.0f});
  Tensor b = a;
  b[0] += 1e-7f;
  EXPECT_TRUE(a.allclose(b));
  b[0] += 1.0f;
  EXPECT_FALSE(a.allclose(b));
  EXPECT_FALSE(a.allclose(Tensor({3})));
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2});
  EXPECT_THROW(t.at(2), std::runtime_error);
  EXPECT_NO_THROW(t.at(1));
}

// --- RNG -----------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

TEST(Rng, BernoulliRate) {
  Rng rng(21);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, SplitIndependence) {
  Rng parent(31);
  Rng child = parent.split();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, RandnShapeAndMoments) {
  Rng rng(5);
  const Tensor t = Tensor::randn({100, 100}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.05f);
}

// --- serialization ---------------------------------------------------------------

TEST(Serialize, TensorRoundtrip) {
  Rng rng(7);
  const Tensor t = Tensor::randn({3, 4, 5}, rng);
  const Bytes b = of::tensor::serialize_tensor(t);
  const Tensor u = of::tensor::deserialize_tensor(b);
  EXPECT_EQ(u.shape(), t.shape());
  EXPECT_TRUE(u.allclose(t, 0.0f, 0.0f));
}

TEST(Serialize, EmptyTensorRoundtrip) {
  const Tensor t({0});
  const Tensor u = of::tensor::deserialize_tensor(of::tensor::serialize_tensor(t));
  EXPECT_EQ(u.numel(), 0u);
}

TEST(Serialize, TensorListRoundtrip) {
  Rng rng(7);
  std::vector<Tensor> ts{Tensor::randn({2, 2}, rng), Tensor::randn({5}, rng), Tensor({1})};
  const auto out = of::tensor::deserialize_tensors(of::tensor::serialize_tensors(ts));
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(out[i].allclose(ts[i], 0.0f, 0.0f));
}

TEST(Serialize, TruncatedBufferThrows) {
  Rng rng(7);
  Bytes b = of::tensor::serialize_tensor(Tensor::randn({4}, rng));
  b.pop_back();
  EXPECT_THROW(of::tensor::deserialize_tensor(b), std::runtime_error);
}

TEST(Serialize, TrailingBytesThrow) {
  Rng rng(7);
  Bytes b = of::tensor::serialize_tensor(Tensor::randn({4}, rng));
  b.push_back(0);
  EXPECT_THROW(of::tensor::deserialize_tensor(b), std::runtime_error);
}

TEST(Serialize, PodHelpers) {
  Bytes b;
  of::tensor::append_pod<std::uint32_t>(b, 0xDEADBEEFu);
  of::tensor::append_pod<float>(b, 1.5f);
  std::size_t off = 0;
  EXPECT_EQ(of::tensor::read_pod<std::uint32_t>(b, off), 0xDEADBEEFu);
  EXPECT_EQ(of::tensor::read_pod<float>(b, off), 1.5f);
  EXPECT_THROW(of::tensor::read_pod<std::uint64_t>(b, off), std::runtime_error);
}

// --- flatten / unflatten ----------------------------------------------------------

TEST(Flatten, RoundTrip) {
  Rng rng(23);
  std::vector<Tensor> ts{Tensor::randn({3, 2}, rng), Tensor::randn({4}, rng)};
  const Tensor flat = of::tensor::flatten_all(ts);
  EXPECT_EQ(flat.numel(), 10u);
  std::vector<Tensor> out{Tensor({3, 2}), Tensor({4})};
  of::tensor::unflatten_into(flat, out);
  EXPECT_TRUE(out[0].allclose(ts[0], 0.0f, 0.0f));
  EXPECT_TRUE(out[1].allclose(ts[1], 0.0f, 0.0f));
}

TEST(Flatten, SizeMismatchThrows) {
  const Tensor flat({5});
  std::vector<Tensor> out{Tensor({2}), Tensor({2})};
  EXPECT_THROW(of::tensor::unflatten_into(flat, out), std::runtime_error);
}

// --- parameterized property sweep: ring-sum identity on many sizes ---------------

class TensorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TensorSizeSweep, SumMatchesKahanReference) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  const Tensor t = Tensor::uniform({n}, rng, -1.0f, 1.0f);
  long double ref = 0.0L;
  for (std::size_t i = 0; i < n; ++i) ref += t[i];
  EXPECT_NEAR(t.sum(), static_cast<float>(ref), 1e-3f);
}

TEST_P(TensorSizeSweep, SerializeRoundtrip) {
  const std::size_t n = GetParam();
  Rng rng(n + 2);
  const Tensor t = Tensor::randn({n}, rng);
  const Tensor u = of::tensor::deserialize_tensor(of::tensor::serialize_tensor(t));
  EXPECT_TRUE(u.allclose(t, 0.0f, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TensorSizeSweep,
                         ::testing::Values(1, 2, 3, 7, 64, 1000, 4097));

}  // namespace
