#include <gtest/gtest.h>

#include "config/yaml.hpp"
#include "core/payload.hpp"
#include "core/topology.hpp"
#include "compression/sparsify.hpp"
#include "privacy/secure_agg.hpp"

namespace {

using of::core::NodeRole;
using of::core::Topology;
using of::config::parse_yaml;
using of::tensor::Rng;
using of::tensor::Tensor;

TEST(Topology, CentralizedShape) {
  const Topology t = Topology::centralized(8);
  EXPECT_EQ(t.kind, "centralized");
  EXPECT_EQ(t.size(), 9);
  EXPECT_EQ(t.num_trainers(), 8);
  EXPECT_EQ(t.nodes[0].role, NodeRole::Aggregator);
  for (int i = 1; i <= 8; ++i) EXPECT_TRUE(t.has_edge(0, i));
  EXPECT_FALSE(t.has_edge(1, 2));
  t.validate();
}

TEST(Topology, RingShape) {
  const Topology t = Topology::ring(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.num_trainers(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(t.has_edge(i, (i + 1) % 5));
  EXPECT_FALSE(t.has_edge(0, 2));
  EXPECT_THROW(Topology::ring(1), std::runtime_error);
}

TEST(Topology, HierarchicalShape) {
  const Topology t = Topology::hierarchical(3, 2);
  EXPECT_EQ(t.size(), 9);  // 3 leaders + 6 trainers
  EXPECT_EQ(t.num_trainers(), 6);
  EXPECT_EQ(t.num_groups, 3);
  for (int g = 0; g < 3; ++g) {
    const int leader = t.group_leader(g);
    ASSERT_GE(leader, 0);
    EXPECT_EQ(t.nodes[static_cast<std::size_t>(leader)].role, NodeRole::Aggregator);
    const auto members = t.group_members(g);
    EXPECT_EQ(members.size(), 3u);
    EXPECT_EQ(members.front(), leader);  // leader has the smallest id
  }
  // Leaders form an outer star rooted at the first leader.
  EXPECT_TRUE(t.has_edge(t.group_leader(0), t.group_leader(1)));
  EXPECT_TRUE(t.has_edge(t.group_leader(0), t.group_leader(2)));
}

TEST(Topology, FromConfigCentralized) {
  const Topology t = Topology::from_config(parse_yaml(
      "_target_: src.omnifed.topology.CentralizedTopology\nnum_clients: 5\n"));
  EXPECT_EQ(t.num_trainers(), 5);
}

TEST(Topology, FromConfigRingAndHierarchical) {
  EXPECT_EQ(Topology::from_config(parse_yaml("_target_: RingTopology\nnum_nodes: 6\n"))
                .num_trainers(),
            6);
  const Topology h = Topology::from_config(
      parse_yaml("_target_: HierarchicalTopology\ngroups: 2\ngroup_size: 3\n"));
  EXPECT_EQ(h.num_trainers(), 6);
  EXPECT_EQ(h.num_groups, 2);
}

TEST(Topology, FromConfigCustomGraph) {
  const Topology t = Topology::from_config(parse_yaml(R"(
_target_: CustomTopology
nodes:
  - id: 0
    role: aggregator
  - id: 1
    role: trainer
  - id: 2
    role: trainer
edges:
  - [0, 1]
  - [0, 2]
)"));
  EXPECT_EQ(t.kind, "custom");
  EXPECT_EQ(t.num_trainers(), 2);
  EXPECT_TRUE(t.has_edge(0, 2));
}

TEST(Topology, UnknownTargetThrows) {
  EXPECT_THROW(Topology::from_config(parse_yaml("_target_: MeshTopology\n")),
               std::runtime_error);
}

TEST(Topology, ValidationCatchesDuplicateAggregators) {
  Topology t;
  t.kind = "custom";
  t.nodes.push_back({0, NodeRole::Aggregator, 0});
  t.nodes.push_back({1, NodeRole::Aggregator, 0});
  t.nodes.push_back({2, NodeRole::Trainer, 0});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, RelayRoleRejectedWithGuidance) {
  Topology t;
  t.kind = "custom";
  t.nodes.push_back({0, NodeRole::Aggregator, 0});
  t.nodes.push_back({1, NodeRole::Relay, 0});
  t.nodes.push_back({2, NodeRole::Trainer, 0});
  try {
    t.validate();
    FAIL() << "expected relay rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("relay"), std::string::npos);
  }
}

TEST(Topology, ValidationCatchesBadEdges) {
  Topology t;
  t.kind = "custom";
  t.nodes.push_back({0, NodeRole::Trainer, 0});
  t.edges.emplace_back(0, 5);
  EXPECT_THROW(t.validate(), std::runtime_error);
}

// --- payload codec ---------------------------------------------------------------------

TEST(Payload, PlainRoundtrip) {
  Rng rng(1);
  std::vector<Tensor> payload{Tensor::randn({3, 2}, rng), Tensor::randn({5}, rng)};
  const auto frame =
      of::core::encode_update(payload, 1.0, of::core::PayloadPlugins{}, 0, 1);
  const auto out = of::core::decode_update(frame, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].allclose(payload[0], 0.0f, 0.0f));
  EXPECT_EQ(out[0].shape(), payload[0].shape());
}

TEST(Payload, WeightScaleApplied) {
  std::vector<Tensor> payload{of::tensor::Tensor({2}, 1.0f)};
  const auto frame =
      of::core::encode_update(payload, 2.5, of::core::PayloadPlugins{}, 0, 1);
  const auto out = of::core::decode_update(frame, nullptr);
  EXPECT_FLOAT_EQ(out[0][0], 2.5f);
}

TEST(Payload, MeanOfPlainFramesIsWeightedMean) {
  std::vector<Tensor> a{of::tensor::Tensor({2}, 1.0f)};
  std::vector<Tensor> b{of::tensor::Tensor({2}, 3.0f)};
  // weights 1.5 and 0.5 (pre-scaled): mean = (1.5·1 + 0.5·3)/2 = 1.5
  const auto fa = of::core::encode_update(a, 1.5, {}, 0, 2);
  const auto fb = of::core::encode_update(b, 0.5, {}, 1, 2);
  const auto mean = of::core::mean_updates({fa, fb}, nullptr, nullptr);
  EXPECT_FLOAT_EQ(mean[0][0], 1.5f);
}

TEST(Payload, CompressedRoundtripPreservesShapes) {
  Rng rng(2);
  std::vector<Tensor> payload{Tensor::randn({20, 10}, rng), Tensor::randn({30}, rng)};
  of::compression::TopK client_codec(10.0, true);
  of::core::PayloadPlugins plugins;
  plugins.compressor = &client_codec;
  const auto frame = of::core::encode_update(payload, 1.0, plugins, 0, 1);
  of::compression::TopK server_codec(10.0, true);
  const auto out = of::core::decode_update(frame, &server_codec);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].shape(), payload[0].shape());
  EXPECT_EQ(out[1].shape(), payload[1].shape());
}

TEST(Payload, CompressedFrameIsSmaller) {
  Rng rng(3);
  std::vector<Tensor> payload{Tensor::randn({10000}, rng)};
  of::compression::TopK codec(100.0, true);
  of::core::PayloadPlugins plugins;
  plugins.compressor = &codec;
  const auto compressed = of::core::encode_update(payload, 1.0, plugins, 0, 1);
  const auto plain = of::core::encode_update(payload, 1.0, {}, 0, 1);
  EXPECT_LT(compressed.size(), plain.size() / 10);
}

TEST(Payload, PrivacyFramesAggregateViaMechanism) {
  const int k = 3;
  of::privacy::SecureAggregation sa("key", k);
  of::core::PayloadPlugins plugins;
  plugins.privacy = &sa;
  Rng rng(4);
  std::vector<of::tensor::Bytes> frames;
  Tensor expected({6});
  for (int i = 0; i < k; ++i) {
    std::vector<Tensor> payload{Tensor::randn({2, 3}, rng)};
    expected.add_(payload[0].reshape({6}));
    frames.push_back(of::core::encode_update(payload, 1.0, plugins, i, k));
  }
  const auto mean = of::core::mean_updates(frames, nullptr, &sa);
  ASSERT_EQ(mean.size(), 1u);
  expected.scale_(1.0f / k);
  EXPECT_TRUE(mean[0].reshape({6}).allclose(expected, 1e-3f, 1e-3f));
}

TEST(Payload, StackedPluginsRejected) {
  of::compression::TopK codec(10.0, true);
  of::privacy::SecureAggregation sa("key", 2);
  of::core::PayloadPlugins plugins;
  plugins.compressor = &codec;
  plugins.privacy = &sa;
  std::vector<Tensor> payload{Tensor({4})};
  EXPECT_THROW(of::core::encode_update(payload, 1.0, plugins, 0, 2), std::runtime_error);
}

TEST(Payload, EmptyFrameListThrows) {
  EXPECT_THROW(of::core::mean_updates({}, nullptr, nullptr), std::runtime_error);
}

// --- robust combination rules -----------------------------------------------------

std::vector<of::tensor::Bytes> frames_of(const std::vector<float>& values) {
  std::vector<of::tensor::Bytes> frames;
  for (float v : values) {
    std::vector<Tensor> payload{of::tensor::Tensor({2}, v)};
    frames.push_back(of::core::encode_update(payload, 1.0, {}, 0, 1));
  }
  return frames;
}

TEST(RobustCombine, MedianOddAndEven) {
  using of::core::AggregationRule;
  auto odd = of::core::robust_combine(frames_of({5.0f, 1.0f, 3.0f}), nullptr,
                                      AggregationRule::Median);
  EXPECT_FLOAT_EQ(odd[0][0], 3.0f);
  auto even = of::core::robust_combine(frames_of({1.0f, 2.0f, 10.0f, 3.0f}), nullptr,
                                       AggregationRule::Median);
  EXPECT_FLOAT_EQ(even[0][0], 2.5f);
}

TEST(RobustCombine, TrimmedMeanClipsTails) {
  using of::core::AggregationRule;
  // trim 0.25 of 4 values → drop 1 from each tail → mean(2, 3) = 2.5.
  auto out = of::core::robust_combine(frames_of({100.0f, 2.0f, 3.0f, -50.0f}), nullptr,
                                      AggregationRule::TrimmedMean, 0.25);
  EXPECT_FLOAT_EQ(out[0][0], 2.5f);
}

TEST(RobustCombine, MedianIgnoresOneOutlier) {
  using of::core::AggregationRule;
  auto out = of::core::robust_combine(frames_of({1.0f, 1.1f, 0.9f, 1e6f}), nullptr,
                                      AggregationRule::Median);
  EXPECT_NEAR(out[0][0], 1.05f, 1e-4f);
}

TEST(RobustCombine, MeanRuleDelegates) {
  using of::core::AggregationRule;
  auto out = of::core::robust_combine(frames_of({1.0f, 3.0f}), nullptr,
                                      AggregationRule::Mean);
  EXPECT_FLOAT_EQ(out[0][0], 2.0f);
}

TEST(RobustCombine, ParseRule) {
  using of::core::AggregationRule;
  EXPECT_EQ(of::core::parse_aggregation_rule("median"), AggregationRule::Median);
  EXPECT_EQ(of::core::parse_aggregation_rule("trimmed_mean"),
            AggregationRule::TrimmedMean);
  EXPECT_THROW(of::core::parse_aggregation_rule("krum"), std::runtime_error);
}

TEST(RobustCombine, BadTrimThrows) {
  EXPECT_THROW(of::core::robust_combine(frames_of({1.0f}), nullptr,
                                        of::core::AggregationRule::TrimmedMean, 0.5),
               std::runtime_error);
}

TEST(Payload, SkipFramesIgnoredInMean) {
  auto frames = frames_of({2.0f, 4.0f});
  frames.push_back(of::core::encode_skip_update());
  const auto mean = of::core::mean_updates(frames, nullptr, nullptr);
  EXPECT_FLOAT_EQ(mean[0][0], 3.0f);  // skip frame excluded from the divisor
  EXPECT_TRUE(of::core::is_skip_update(of::core::encode_skip_update()));
  EXPECT_THROW(
      of::core::mean_updates({of::core::encode_skip_update()}, nullptr, nullptr),
      std::runtime_error);
}

TEST(Payload, PackUnpackTensors) {
  Rng rng(5);
  std::vector<Tensor> ts{Tensor::randn({4}, rng)};
  const auto out = of::core::unpack_tensors(of::core::pack_tensors(ts));
  EXPECT_TRUE(out[0].allclose(ts[0], 0.0f, 0.0f));
}

}  // namespace
